// Package live is the serving plane of the reproduction: the
// always-on, horizontally partitioned backend the paper's management
// plane runs as, layered on the frozen columnar telemetry.Dataset.
//
// Records stream into N hash-partitioned shards (by publisher/session
// key), each with a bounded ingest queue drained by one consumer
// goroutine that coalesces queued batches into micro-batched appends.
// Admission is explicit: a batch whose shard queues are full is
// rejected whole with a retry-after hint and counted — never silently
// dropped, never partially applied.
//
// An epoch snapshot manager concurrently drains all shards on a
// configurable cadence, merges the new records with the previous
// generation, and publishes an immutable Generation (epoch number +
// frozen Dataset) behind an atomic pointer. Readers load the pointer
// and run PR 1's analytics over a consistent view that never changes
// after publication; writers keep appending to the next epoch. There
// is no lock shared between the query path and the append path.
package live

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("live: engine closed")

// WAL is the durability hook the engine drives — satisfied by
// *wal.Log. AppendBatch persists an admitted batch's per-shard parts
// before the records enter the shard queues: an error means the batch
// must be rejected whole (the handler returns 503 and the client
// retries), so acknowledgement implies the WAL has the records.
// Bounds reports the last sequence appended per shard; the engine
// reads it under the same admission lock that quiesces appends while
// an epoch flushes, making the reading exact. Commit hands a freshly
// published generation back so the WAL can checkpoint it and truncate
// the segments it covers; a Commit error is counted, not fatal — the
// WAL keeps growing but loses nothing.
type WAL interface {
	AppendBatch(parts [][]telemetry.ViewRecord, parent obs.SpanID) error
	Bounds() []uint64
	Commit(epoch int64, records []telemetry.ViewRecord, bounds []uint64, parent obs.SpanID) error
}

// Config parameterizes an Engine. The zero value gets sensible
// defaults: 8 shards, 64 queued batches per shard, 4096-record
// micro-batches, 5 s epochs, 500 ms retry-after, the wall clock, a
// fresh metrics registry, and a *disabled* tracer — tracing costs one
// atomic load per instrumentation site until a daemon opts in by
// supplying an enabled obs.Tracer.
type Config struct {
	Shards     int             // hash partitions
	QueueDepth int             // queued batches per shard before backpressure
	BatchMax   int             // records coalesced into one pending append
	EpochEvery time.Duration   // snapshot cadence used by Run
	RetryAfter time.Duration   // hint returned with a backpressure rejection
	Clock      simclock.Clock  // time source (inject a manual clock in tests)
	Metrics    *obs.Registry   // metrics destination
	Trace      *obs.Tracer     // span/event destination (nil = disabled)
	Series     *obs.SeriesRing // in-process time series served at /v1/series (nil = empty)
	WAL        WAL             // durability hook (nil = no WAL)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 4096
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = simclock.Wall()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	if c.Trace == nil {
		t := obs.NewTracer(c.Clock, 256)
		t.SetEnabled(false)
		c.Trace = t
	}
	return c
}

// Generation is one published epoch: an immutable dataset plus its
// provenance. A Generation never changes after publication — re-running
// a query against a retained Generation returns byte-identical output.
type Generation struct {
	Epoch   int64
	Records int
	Created time.Time
	Dataset *telemetry.Dataset
}

// batchMsg is one admitted sub-batch in flight to a shard consumer.
// It carries the admission span's ID so the consumer's coalesced
// append links under the same trace as the handler that admitted it.
type batchMsg struct {
	recs   []telemetry.ViewRecord
	parent obs.SpanID
}

// shard is one ingest partition: a bounded queue of admitted batches
// and the pending buffer its consumer goroutine appends them to.
type shard struct {
	ch    chan batchMsg
	flush chan chan struct{} // snapshot-time drain requests, acked
	quit  chan struct{}

	mu      sync.Mutex
	pending []telemetry.ViewRecord
}

// take swaps out the pending buffer.
//
//vmp:hotpath
func (sh *shard) take() []telemetry.ViewRecord {
	sh.mu.Lock()
	p := sh.pending
	sh.pending = nil
	sh.mu.Unlock()
	return p
}

// Engine is the live serving engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	clock  simclock.Clock
	tracer *obs.Tracer
	shards []*shard

	// ingestMu serializes admission: with the consumers only ever
	// draining, holding it across the capacity check and the sends
	// makes batch admission atomic — a batch is enqueued everywhere or
	// rejected whole, so retries never duplicate records. It also
	// serializes admission against the epoch cut: Snapshot holds it
	// across the WAL bounds reading, the shard flush, and the pending
	// take, so a generation contains exactly the records at or below
	// the bounds it commits.
	ingestMu sync.Mutex
	closed   bool // guarded by ingestMu
	wal      WAL  // guarded by ingestMu; nil when durability is off

	// snapMu serializes epoch snapshots and consumer shutdown.
	snapMu  sync.Mutex
	base    []telemetry.ViewRecord // published generation's records
	stopped bool                   // guarded by snapMu

	gen atomic.Pointer[Generation]
	wg  sync.WaitGroup

	ingested      *obs.Counter
	backpressured *obs.Counter
	walErrors     *obs.Counter
	snapshots     *obs.Counter
	batchSizes    *obs.Histogram
	snapLatency   *obs.Histogram
	queueDepth    *obs.Gauge
	genRecords    *obs.Gauge
	genEpoch      *obs.Gauge
	genAgeMS      *obs.Gauge
	shardDepth    []*obs.Gauge // one queue-depth gauge per shard
}

// NewEngine starts an engine: one consumer goroutine per shard, and an
// empty generation published so queries are serveable immediately.
// Call Close to drain and stop it.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:           cfg,
		clock:         cfg.Clock,
		tracer:        cfg.Trace,
		wal:           cfg.WAL,
		ingested:      cfg.Metrics.Counter("live_ingest_records_total"),
		backpressured: cfg.Metrics.Counter("live_ingest_backpressured_total"),
		walErrors:     cfg.Metrics.Counter("live_wal_errors_total"),
		snapshots:     cfg.Metrics.Counter("live_snapshots_total"),
		batchSizes:    cfg.Metrics.Histogram("live_append_batch_records", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		snapLatency:   cfg.Metrics.Histogram("live_snapshot_seconds", []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		queueDepth:    cfg.Metrics.Gauge("live_queue_depth_batches"),
		genRecords:    cfg.Metrics.Gauge("live_generation_records"),
		genEpoch:      cfg.Metrics.Gauge("live_generation_epoch"),
		genAgeMS:      cfg.Metrics.Gauge("live_generation_age_ms"),
	}
	e.shards = make([]*shard, cfg.Shards)
	e.shardDepth = make([]*obs.Gauge, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{
			ch:    make(chan batchMsg, cfg.QueueDepth),
			flush: make(chan chan struct{}),
			quit:  make(chan struct{}),
		}
		e.shardDepth[i] = cfg.Metrics.Gauge(fmt.Sprintf("live_shard_%03d_queue_depth_batches", i))
		e.wg.Add(1)
		go e.runShard(e.shards[i])
	}
	e.gen.Store(&Generation{Epoch: 0, Created: e.clock.Now(), Dataset: telemetry.NewDataset(nil)})
	return e
}

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }

// Tracer returns the engine's span/event sink (disabled unless the
// config supplied an enabled one).
func (e *Engine) Tracer() *obs.Tracer { return e.tracer }

// Series returns the configured in-process time series ring, nil when
// the daemon did not opt into self-measurement sampling.
func (e *Engine) Series() *obs.SeriesRing { return e.cfg.Series }

// PublishGauges refreshes the engine's operational levels in its
// registry: total and per-shard queue depths, and the published
// generation's epoch, record count, and age. It is the engine's
// obs.Sampler source — called on the sampling cadence so every series
// point and every scrape carries current levels, not just the values
// last touched by an ingest or snapshot.
func (e *Engine) PublishGauges() {
	total := 0
	for i, sh := range e.shards {
		n := len(sh.ch)
		total += n
		e.shardDepth[i].Set(int64(n))
	}
	e.queueDepth.Set(int64(total))
	g := e.gen.Load()
	e.genEpoch.Set(g.Epoch)
	e.genRecords.Set(int64(g.Records))
	e.genAgeMS.Set(e.clock.Now().Sub(g.Created).Milliseconds())
}

// RetryAfter returns the configured backpressure hint.
func (e *Engine) RetryAfter() time.Duration { return e.cfg.RetryAfter }

// AttachWAL installs (or removes, with nil) the durability hook. The
// boot sequence uses it to replay a WAL through Ingest *before*
// attaching it, so replayed records are not appended back to the log
// they came from.
func (e *Engine) AttachWAL(w WAL) {
	e.ingestMu.Lock()
	e.wal = w
	e.ingestMu.Unlock()
}

// Generation returns the currently published generation. The result is
// immutable; callers may retain it across epochs.
func (e *Engine) Generation() *Generation { return e.gen.Load() }

// shardOf hash-partitions a record by publisher and video (the session
// key): FNV-1a, inlined so admission stays allocation-free, and
// deterministic so a record set always shards the same way.
//
//vmp:hotpath
func (e *Engine) shardOf(r *telemetry.ViewRecord) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(r.Publisher); i++ {
		h ^= uint32(r.Publisher[i])
		h *= prime32
	}
	h ^= '/'
	h *= prime32
	for i := 0; i < len(r.VideoID); i++ {
		h ^= uint32(r.VideoID[i])
		h *= prime32
	}
	return int(h % uint32(len(e.shards)))
}

// queuedBatches sums the queue depth across shards. Lock-free and
// advisory: concurrent consumers may drain while it counts.
func (e *Engine) queuedBatches() int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh.ch)
	}
	return n
}

// Result reports what happened to one Ingest batch.
type Result struct {
	Accepted      int
	Backpressured int           // rejected for full queues (whole batch)
	RetryAfter    time.Duration // when to retry, if backpressured
}

// Ingest admits a batch into the shard queues. Admission is atomic: if
// any target shard's queue is full the whole batch is rejected with
// Backpressured set and a RetryAfter hint, and no record is enqueued —
// the caller retries the identical batch without duplication. Ingest
// never blocks on a full queue and never blocks queries.
func (e *Engine) Ingest(recs []telemetry.ViewRecord) (Result, error) {
	return e.IngestSpan(recs, 0)
}

// IngestSpan is Ingest with a trace parent: the admission span — and
// the shard consume spans downstream of it — link under parent, so an
// HTTP handler's batch span owns the whole per-stage decomposition
// (scan → admit → shard queue → coalesced consume). With tracing
// disabled it is exactly Ingest.
func (e *Engine) IngestSpan(recs []telemetry.ViewRecord, parent obs.SpanID) (Result, error) {
	if len(recs) == 0 {
		return Result{}, nil
	}
	sp := e.tracer.Start("ingest.admit", parent)
	parts := make([][]telemetry.ViewRecord, len(e.shards))
	for i := range recs {
		s := e.shardOf(&recs[i])
		parts[s] = append(parts[s], recs[i])
	}
	e.ingestMu.Lock()
	if e.closed {
		e.ingestMu.Unlock()
		sp.End(obs.KV("records", int64(len(recs))), obs.KV("closed", 1))
		return Result{}, ErrClosed
	}
	for si, part := range parts {
		if len(part) > 0 && len(e.shards[si].ch) == cap(e.shards[si].ch) {
			e.ingestMu.Unlock()
			e.backpressured.Add(int64(len(recs)))
			sp.End(obs.KV("records", int64(len(recs))), obs.KV("backpressured", int64(len(recs))))
			e.tracer.Emit("batch_rejected", obs.KV("records", int64(len(recs))), obs.KV("shard", int64(si)))
			return Result{Backpressured: len(recs), RetryAfter: e.cfg.RetryAfter}, nil
		}
	}
	if e.wal != nil {
		// Durability precedes acknowledgement: the batch reaches the
		// WAL (fsynced, under PolicyBatch) before any record enters a
		// shard queue. An append failure rejects the batch whole —
		// nothing was enqueued, so the client's retry is exact.
		if err := e.wal.AppendBatch(parts, sp.ID()); err != nil {
			e.ingestMu.Unlock()
			e.walErrors.Add(1)
			sp.End(obs.KV("records", int64(len(recs))), obs.KV("wal_error", 1))
			e.tracer.Emit("wal_append_error", obs.KV("records", int64(len(recs))))
			return Result{}, fmt.Errorf("live: wal append: %w", err)
		}
	}
	shards := int64(0)
	for si, part := range parts {
		if len(part) > 0 {
			// Cannot block: consumers only drain, and the capacity
			// check above ran under the same ingestMu hold.
			e.shards[si].ch <- batchMsg{recs: part, parent: sp.ID()}
			shards++
		}
	}
	e.ingestMu.Unlock()
	e.ingested.Add(int64(len(recs)))
	e.queueDepth.Set(int64(e.queuedBatches()))
	sp.End(obs.KV("records", int64(len(recs))), obs.KV("shards", shards))
	e.tracer.Emit("batch_admitted", obs.KV("records", int64(len(recs))), obs.KV("shards", shards))
	return Result{Accepted: len(recs)}, nil
}

// runShard is a shard's consumer: it drains the queue, coalescing
// whatever is immediately available (up to BatchMax records) into one
// micro-batched append so a burst pays one lock acquisition, not one
// per POST.
func (e *Engine) runShard(sh *shard) {
	defer e.wg.Done()
	for {
		select {
		case m := <-sh.ch:
			e.appendCoalesced(sh, m)
		case ack := <-sh.flush:
			e.drainShard(sh)
			close(ack)
		case <-sh.quit:
			e.drainShard(sh)
			return
		}
	}
}

// appendCoalesced appends a queued batch plus anything else already
// queued. The consume span links under the first batch's admission
// span; further coalesced batches are counted in its attrs.
//
//vmp:hotpath
func (e *Engine) appendCoalesced(sh *shard, m batchMsg) {
	sp := e.tracer.Start("shard.consume", m.parent)
	batch := m.recs
	coalesced := int64(1)
	for len(batch) < e.cfg.BatchMax {
		select {
		case more := <-sh.ch:
			batch = append(batch, more.recs...)
			coalesced++
			continue
		default:
		}
		break
	}
	sh.mu.Lock()
	sh.pending = append(sh.pending, batch...)
	sh.mu.Unlock()
	e.batchSizes.Observe(float64(len(batch)))
	sp.End(obs.KV("records", int64(len(batch))), obs.KV("coalesced", coalesced))
}

// drainShard empties the queue into the pending buffer.
//
//vmp:hotpath
func (e *Engine) drainShard(sh *shard) {
	for {
		select {
		case m := <-sh.ch:
			e.appendCoalesced(sh, m)
		default:
			return
		}
	}
}

// flushShards asks every consumer to drain its queue into the pending
// buffer and waits for all acks. Caller holds snapMu. It creates no
// spans of its own: the Flush quiesce path must not race span IDs
// with the consumers it is waiting on, and Snapshot wraps it in an
// epoch.flush span instead.
func (e *Engine) flushShards() {
	acks := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		ack := make(chan struct{})
		acks[i] = ack
		sh.flush <- ack
	}
	for _, ack := range acks {
		<-ack
	}
}

// Flush forces every shard consumer to drain its queue into the
// pending buffer without cutting an epoch. When it returns, every
// batch admitted before the call has been appended and the consumers
// are idle — the quiesce point the deterministic-trace tests and
// drain paths rely on. Flush does not publish a generation.
func (e *Engine) Flush() {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if e.stopped {
		return
	}
	e.flushShards()
}

// Snapshot cuts an epoch: it concurrently flushes every shard's queue,
// takes the pending buffers, merges them with the published
// generation's records, freezes the merge into a new Dataset, and
// publishes it. Records admitted before Snapshot is called are always
// included; records racing with it land in this epoch or the next.
func (e *Engine) Snapshot() *Generation {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if e.stopped {
		return e.gen.Load()
	}
	start := e.clock.Now()
	sp := e.tracer.Start("epoch.cut", 0)
	e.tracer.Emit("epoch_cut", obs.KV("epoch", e.gen.Load().Epoch+1))
	fsp := e.tracer.Start("epoch.flush", sp.ID())
	// Admission is held off across the bounds reading, the flush, and
	// the pending take: the generation cut here contains exactly the
	// records at or below the WAL bounds — nothing admitted later can
	// leak into it — which is what makes the Commit truncation and a
	// post-crash replay reconstruct this generation, no more, no less.
	e.ingestMu.Lock()
	w := e.wal
	var bounds []uint64
	if w != nil {
		bounds = w.Bounds()
	}
	e.flushShards()
	parts := make([][]telemetry.ViewRecord, len(e.shards))
	n := len(e.base)
	delta := 0
	for i, sh := range e.shards {
		parts[i] = sh.take()
		delta += len(parts[i])
		n += len(parts[i])
	}
	e.ingestMu.Unlock()
	fsp.End(obs.KV("shards", int64(len(e.shards))))
	msp := e.tracer.Start("epoch.merge", sp.ID())
	merged := make([]telemetry.ViewRecord, 0, n)
	merged = append(merged, e.base...)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	// Canonical order, not arrival order: the same record set produces
	// the same generation — and byte-identical query answers — no
	// matter how ingestion interleaved across shards.
	telemetry.CanonicalSort(merged)
	ds := telemetry.NewDataset(merged)
	msp.End(obs.KV("records", int64(ds.Len())), obs.KV("delta", int64(delta)))
	e.base = ds.All()
	g := &Generation{
		Epoch:   e.gen.Load().Epoch + 1,
		Records: ds.Len(),
		Created: start,
		Dataset: ds,
	}
	e.gen.Store(g)
	e.snapshots.Add(1)
	e.genRecords.Set(int64(ds.Len()))
	e.genEpoch.Set(g.Epoch)
	e.genAgeMS.Set(0)
	e.queueDepth.Set(int64(e.queuedBatches()))
	e.snapLatency.Observe(e.clock.Now().Sub(start).Seconds())
	e.tracer.Emit("generation_published",
		obs.KV("epoch", g.Epoch), obs.KV("records", int64(g.Records)), obs.KV("delta", int64(delta)))
	if w != nil {
		// Fold the WAL forward to the published generation. A failed
		// commit is counted, not fatal: the WAL keeps its segments and
		// the previous checkpoint, so it grows but loses nothing.
		if err := w.Commit(g.Epoch, ds.All(), bounds, sp.ID()); err != nil {
			e.walErrors.Add(1)
			e.tracer.Emit("wal_commit_error", obs.KV("epoch", g.Epoch))
		}
	}
	sp.End(obs.KV("epoch", g.Epoch), obs.KV("records", int64(g.Records)))
	return g
}

// Run snapshots on the configured cadence until ctx is done. The
// ticker is operational heartbeat, not study time, so the real ticker
// is correct here; determinism-sensitive callers drive Snapshot
// directly instead.
func (e *Engine) Run(ctx context.Context) {
	tick := time.NewTicker(e.cfg.EpochEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			e.Snapshot()
		}
	}
}

// Close drains and stops the engine: no further batches are admitted,
// everything already admitted is flushed into a final published
// generation, and the shard consumers exit. Close is idempotent and
// returns the final generation.
func (e *Engine) Close() *Generation {
	e.ingestMu.Lock()
	already := e.closed
	e.closed = true
	e.ingestMu.Unlock()
	if already {
		return e.gen.Load()
	}
	g := e.Snapshot()
	e.snapMu.Lock()
	if !e.stopped {
		e.stopped = true
		for _, sh := range e.shards {
			close(sh.quit)
		}
		e.wg.Wait()
	}
	e.snapMu.Unlock()
	return g
}
