// Package live is the serving plane of the reproduction: the
// always-on, horizontally partitioned backend the paper's management
// plane runs as, layered on the frozen columnar telemetry.Dataset.
//
// Records stream into N hash-partitioned shards (by publisher/session
// key), each with a bounded ingest queue drained by one consumer
// goroutine that coalesces queued batches into micro-batched appends.
// Admission is explicit: a batch whose shard queues are full is
// rejected whole with a retry-after hint and counted — never silently
// dropped, never partially applied.
//
// An epoch snapshot manager concurrently drains all shards on a
// configurable cadence, merges the new records with the previous
// generation, and publishes an immutable Generation (epoch number +
// frozen Dataset) behind an atomic pointer. Readers load the pointer
// and run PR 1's analytics over a consistent view that never changes
// after publication; writers keep appending to the next epoch. There
// is no lock shared between the query path and the append path.
package live

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// ErrClosed is returned by Ingest after Close.
var ErrClosed = errors.New("live: engine closed")

// Config parameterizes an Engine. The zero value gets sensible
// defaults: 8 shards, 64 queued batches per shard, 4096-record
// micro-batches, 5 s epochs, 500 ms retry-after, the wall clock, and a
// fresh metrics registry.
type Config struct {
	Shards     int            // hash partitions
	QueueDepth int            // queued batches per shard before backpressure
	BatchMax   int            // records coalesced into one pending append
	EpochEvery time.Duration  // snapshot cadence used by Run
	RetryAfter time.Duration  // hint returned with a backpressure rejection
	Clock      simclock.Clock // time source (inject a manual clock in tests)
	Metrics    *obs.Registry  // metrics destination
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.BatchMax <= 0 {
		c.BatchMax = 4096
	}
	if c.EpochEvery <= 0 {
		c.EpochEvery = 5 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.Clock == nil {
		c.Clock = simclock.Wall()
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
	return c
}

// Generation is one published epoch: an immutable dataset plus its
// provenance. A Generation never changes after publication — re-running
// a query against a retained Generation returns byte-identical output.
type Generation struct {
	Epoch   int64
	Records int
	Created time.Time
	Dataset *telemetry.Dataset
}

// shard is one ingest partition: a bounded queue of admitted batches
// and the pending buffer its consumer goroutine appends them to.
type shard struct {
	ch    chan []telemetry.ViewRecord
	flush chan chan struct{} // snapshot-time drain requests, acked
	quit  chan struct{}

	mu      sync.Mutex
	pending []telemetry.ViewRecord
}

// take swaps out the pending buffer.
func (sh *shard) take() []telemetry.ViewRecord {
	sh.mu.Lock()
	p := sh.pending
	sh.pending = nil
	sh.mu.Unlock()
	return p
}

// Engine is the live serving engine. All methods are safe for
// concurrent use.
type Engine struct {
	cfg    Config
	clock  simclock.Clock
	shards []*shard

	// ingestMu serializes admission: with the consumers only ever
	// draining, holding it across the capacity check and the sends
	// makes batch admission atomic — a batch is enqueued everywhere or
	// rejected whole, so retries never duplicate records.
	ingestMu sync.Mutex
	closed   bool // guarded by ingestMu

	// snapMu serializes epoch snapshots and consumer shutdown.
	snapMu  sync.Mutex
	base    []telemetry.ViewRecord // published generation's records
	stopped bool                   // guarded by snapMu

	gen atomic.Pointer[Generation]
	wg  sync.WaitGroup

	ingested      *obs.Counter
	backpressured *obs.Counter
	snapshots     *obs.Counter
	batchSizes    *obs.Histogram
	snapLatency   *obs.Histogram
	queueDepth    *obs.Gauge
	genRecords    *obs.Gauge
}

// NewEngine starts an engine: one consumer goroutine per shard, and an
// empty generation published so queries are serveable immediately.
// Call Close to drain and stop it.
func NewEngine(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:           cfg,
		clock:         cfg.Clock,
		ingested:      cfg.Metrics.Counter("live_ingest_records_total"),
		backpressured: cfg.Metrics.Counter("live_ingest_backpressured_total"),
		snapshots:     cfg.Metrics.Counter("live_snapshots_total"),
		batchSizes:    cfg.Metrics.Histogram("live_append_batch_records", []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}),
		snapLatency:   cfg.Metrics.Histogram("live_snapshot_seconds", []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5}),
		queueDepth:    cfg.Metrics.Gauge("live_queue_depth_batches"),
		genRecords:    cfg.Metrics.Gauge("live_generation_records"),
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		e.shards[i] = &shard{
			ch:    make(chan []telemetry.ViewRecord, cfg.QueueDepth),
			flush: make(chan chan struct{}),
			quit:  make(chan struct{}),
		}
		e.wg.Add(1)
		go e.runShard(e.shards[i])
	}
	e.gen.Store(&Generation{Epoch: 0, Created: e.clock.Now(), Dataset: telemetry.NewDataset(nil)})
	return e
}

// Metrics returns the engine's registry.
func (e *Engine) Metrics() *obs.Registry { return e.cfg.Metrics }

// RetryAfter returns the configured backpressure hint.
func (e *Engine) RetryAfter() time.Duration { return e.cfg.RetryAfter }

// Generation returns the currently published generation. The result is
// immutable; callers may retain it across epochs.
func (e *Engine) Generation() *Generation { return e.gen.Load() }

// shardOf hash-partitions a record by publisher and video (the session
// key): FNV-1a, inlined so admission stays allocation-free, and
// deterministic so a record set always shards the same way.
func (e *Engine) shardOf(r *telemetry.ViewRecord) int {
	const offset32, prime32 = 2166136261, 16777619
	h := uint32(offset32)
	for i := 0; i < len(r.Publisher); i++ {
		h ^= uint32(r.Publisher[i])
		h *= prime32
	}
	h ^= '/'
	h *= prime32
	for i := 0; i < len(r.VideoID); i++ {
		h ^= uint32(r.VideoID[i])
		h *= prime32
	}
	return int(h % uint32(len(e.shards)))
}

// queuedBatches sums the queue depth across shards. Lock-free and
// advisory: concurrent consumers may drain while it counts.
func (e *Engine) queuedBatches() int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh.ch)
	}
	return n
}

// Result reports what happened to one Ingest batch.
type Result struct {
	Accepted      int
	Backpressured int           // rejected for full queues (whole batch)
	RetryAfter    time.Duration // when to retry, if backpressured
}

// Ingest admits a batch into the shard queues. Admission is atomic: if
// any target shard's queue is full the whole batch is rejected with
// Backpressured set and a RetryAfter hint, and no record is enqueued —
// the caller retries the identical batch without duplication. Ingest
// never blocks on a full queue and never blocks queries.
func (e *Engine) Ingest(recs []telemetry.ViewRecord) (Result, error) {
	if len(recs) == 0 {
		return Result{}, nil
	}
	parts := make([][]telemetry.ViewRecord, len(e.shards))
	for i := range recs {
		s := e.shardOf(&recs[i])
		parts[s] = append(parts[s], recs[i])
	}
	e.ingestMu.Lock()
	if e.closed {
		e.ingestMu.Unlock()
		return Result{}, ErrClosed
	}
	for si, part := range parts {
		if len(part) > 0 && len(e.shards[si].ch) == cap(e.shards[si].ch) {
			e.ingestMu.Unlock()
			e.backpressured.Add(int64(len(recs)))
			return Result{Backpressured: len(recs), RetryAfter: e.cfg.RetryAfter}, nil
		}
	}
	for si, part := range parts {
		if len(part) > 0 {
			// Cannot block: consumers only drain, and the capacity
			// check above ran under the same ingestMu hold.
			e.shards[si].ch <- part
		}
	}
	e.ingestMu.Unlock()
	e.ingested.Add(int64(len(recs)))
	e.queueDepth.Set(int64(e.queuedBatches()))
	return Result{Accepted: len(recs)}, nil
}

// runShard is a shard's consumer: it drains the queue, coalescing
// whatever is immediately available (up to BatchMax records) into one
// micro-batched append so a burst pays one lock acquisition, not one
// per POST.
func (e *Engine) runShard(sh *shard) {
	defer e.wg.Done()
	for {
		select {
		case batch := <-sh.ch:
			e.appendCoalesced(sh, batch)
		case ack := <-sh.flush:
			e.drainShard(sh)
			close(ack)
		case <-sh.quit:
			e.drainShard(sh)
			return
		}
	}
}

// appendCoalesced appends batch plus anything else already queued.
func (e *Engine) appendCoalesced(sh *shard, batch []telemetry.ViewRecord) {
	for len(batch) < e.cfg.BatchMax {
		select {
		case more := <-sh.ch:
			batch = append(batch, more...)
			continue
		default:
		}
		break
	}
	sh.mu.Lock()
	sh.pending = append(sh.pending, batch...)
	sh.mu.Unlock()
	e.batchSizes.Observe(float64(len(batch)))
}

// drainShard empties the queue into the pending buffer.
func (e *Engine) drainShard(sh *shard) {
	for {
		select {
		case batch := <-sh.ch:
			e.appendCoalesced(sh, batch)
		default:
			return
		}
	}
}

// Snapshot cuts an epoch: it concurrently flushes every shard's queue,
// takes the pending buffers, merges them with the published
// generation's records, freezes the merge into a new Dataset, and
// publishes it. Records admitted before Snapshot is called are always
// included; records racing with it land in this epoch or the next.
func (e *Engine) Snapshot() *Generation {
	e.snapMu.Lock()
	defer e.snapMu.Unlock()
	if e.stopped {
		return e.gen.Load()
	}
	start := e.clock.Now()
	acks := make([]chan struct{}, len(e.shards))
	for i, sh := range e.shards {
		ack := make(chan struct{})
		acks[i] = ack
		sh.flush <- ack
	}
	for _, ack := range acks {
		<-ack
	}
	parts := make([][]telemetry.ViewRecord, len(e.shards))
	n := len(e.base)
	for i, sh := range e.shards {
		parts[i] = sh.take()
		n += len(parts[i])
	}
	merged := make([]telemetry.ViewRecord, 0, n)
	merged = append(merged, e.base...)
	for _, p := range parts {
		merged = append(merged, p...)
	}
	// Canonical order, not arrival order: the same record set produces
	// the same generation — and byte-identical query answers — no
	// matter how ingestion interleaved across shards.
	telemetry.CanonicalSort(merged)
	ds := telemetry.NewDataset(merged)
	e.base = ds.All()
	g := &Generation{
		Epoch:   e.gen.Load().Epoch + 1,
		Records: ds.Len(),
		Created: start,
		Dataset: ds,
	}
	e.gen.Store(g)
	e.snapshots.Add(1)
	e.genRecords.Set(int64(ds.Len()))
	e.queueDepth.Set(int64(e.queuedBatches()))
	e.snapLatency.Observe(e.clock.Now().Sub(start).Seconds())
	return g
}

// Run snapshots on the configured cadence until ctx is done. The
// ticker is operational heartbeat, not study time, so the real ticker
// is correct here; determinism-sensitive callers drive Snapshot
// directly instead.
func (e *Engine) Run(ctx context.Context) {
	tick := time.NewTicker(e.cfg.EpochEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			e.Snapshot()
		}
	}
}

// Close drains and stops the engine: no further batches are admitted,
// everything already admitted is flushed into a final published
// generation, and the shard consumers exit. Close is idempotent and
// returns the final generation.
func (e *Engine) Close() *Generation {
	e.ingestMu.Lock()
	already := e.closed
	e.closed = true
	e.ingestMu.Unlock()
	if already {
		return e.gen.Load()
	}
	g := e.Snapshot()
	e.snapMu.Lock()
	if !e.stopped {
		e.stopped = true
		for _, sh := range e.shards {
			close(sh.quit)
		}
		e.wg.Wait()
	}
	e.snapMu.Unlock()
	return g
}
