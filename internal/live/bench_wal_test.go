package live

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"vmp/internal/simclock"
	"vmp/internal/wal"
	"vmp/internal/wire"
)

// benchHTTPIngestWAL is benchHTTPIngest's binary variant with a WAL
// attached: encode one 2000-record batch, POST it over loopback, admit
// it, and make it durable under the given fsync policy — the full
// acked-means-durable path a production daemon runs. Compared against
// BenchmarkHTTPIngestBinary (no WAL), the spread is the durability
// tax; fsync=off must sit within noise of that baseline, and interval
// (group commit) must hold at least half of it. BENCH_wal.json records
// the numbers.
func benchHTTPIngestWAL(b *testing.B, policy wal.Policy) {
	recs := genRecords(2000)
	enc := wire.NewEncoder()
	var frame []byte
	encode := func() []byte {
		var err error
		frame, err = enc.AppendFrame(frame[:0], recs)
		if err != nil {
			b.Fatal(err)
		}
		return frame
	}

	root := b.TempDir()
	var (
		e      *Engine
		wlog   *wal.Log
		srv    *httptest.Server
		client *http.Client
		gen    int
	)
	boot := func() {
		dir := filepath.Join(root, "wal-"+strconv.Itoa(gen))
		gen++
		var err error
		wlog, err = wal.Open(wal.Options{
			Dir:    dir,
			Shards: 8,
			Policy: policy,
			Clock:  simclock.NewManual(simclock.StudyStart),
		})
		if err != nil {
			b.Fatal(err)
		}
		e = NewEngine(Config{Shards: 8, QueueDepth: 64, Clock: simclock.NewManual(simclock.StudyStart), WAL: wlog})
		srv = httptest.NewServer(NewServer(e).Handler())
		client = srv.Client()
	}
	shutdown := func() {
		srv.Close()
		e.AttachWAL(nil) // the close-time epoch's checkpoint is not the append path under test
		e.Close()
		if err := wlog.Close(); err != nil {
			b.Fatal(err)
		}
		_ = os.RemoveAll(filepath.Join(root, "wal-"+strconv.Itoa(gen-1)))
	}
	boot()
	defer func() { shutdown() }()

	body := encode()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%100 == 0 {
			b.StopTimer()
			shutdown()
			boot()
			b.StartTimer()
		}
		body := encode()
		for {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/views", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", wire.ContentTypeBinary)
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				b.Fatalf("ingest status = %s", resp.Status)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkHTTPIngestWALBatch fsyncs inside every request — acked
// strictly implies durable, even against power loss.
func BenchmarkHTTPIngestWALBatch(b *testing.B) { benchHTTPIngestWAL(b, wal.PolicyBatch) }

// BenchmarkHTTPIngestWALInterval group-commits on the WAL's sync loop;
// requests pay only the write() syscall.
func BenchmarkHTTPIngestWALInterval(b *testing.B) { benchHTTPIngestWAL(b, wal.PolicyInterval) }

// BenchmarkHTTPIngestWALOff appends without ever fsyncing — the WAL's
// CPU-only overhead against BenchmarkHTTPIngestBinary.
func BenchmarkHTTPIngestWALOff(b *testing.B) { benchHTTPIngestWAL(b, wal.PolicyOff) }
