package live

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"vmp/internal/obs"
	"vmp/internal/simclock"
)

// TestEngineTraceDeterministic pins the tentpole contract: a fixed
// ingest schedule against a single-sharded engine on a frozen manual
// clock renders byte-identical trace JSON across runs. One shard makes
// span-ID assignment a fixed alternation (admit, then its consume),
// and Flush() quiesces the consumer before every Snapshot so no
// consumer-side Start can race the epoch spans.
func TestEngineTraceDeterministic(t *testing.T) {
	run := func() []byte {
		tr := obs.NewTracer(simclock.NewManual(simclock.StudyStart), 256)
		e := NewEngine(Config{
			Shards:     1,
			QueueDepth: 64,
			Clock:      simclock.NewManual(simclock.StudyStart),
			Trace:      tr,
		})
		recs := genRecords(100)
		for lo := 0; lo < len(recs); lo += 25 {
			if _, err := e.Ingest(recs[lo : lo+25]); err != nil {
				t.Fatal(err)
			}
			e.Flush()
		}
		e.Snapshot()
		e.Flush()
		out, err := json.Marshal(tr.Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		e.Close()
		return out
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("trace JSON diverged across identical runs:\n%s\n%s", a, b)
	}

	var snap obs.TraceSnapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatal(err)
	}
	// 4 ingest rounds: admit + consume each; plus epoch cut/flush/merge.
	wantStages := map[string]int64{"ingest.admit": 4, "shard.consume": 4, "epoch.cut": 1, "epoch.flush": 1, "epoch.merge": 1}
	got := map[string]int64{}
	for _, st := range snap.Stages {
		got[st.Name] = st.Count
	}
	for name, want := range wantStages {
		if got[name] != want {
			t.Fatalf("stage %s: count %d, want %d (stages: %+v)", name, got[name], want, snap.Stages)
		}
	}
	// Consume spans link under their admission span.
	byID := map[uint64]obs.SpanJSON{}
	for _, sp := range snap.Spans {
		byID[sp.ID] = sp
	}
	for _, sp := range snap.Spans {
		if sp.Name == "shard.consume" {
			if p, ok := byID[sp.Parent]; !ok || p.Name != "ingest.admit" {
				t.Fatalf("consume span %d not parented to an admit span: %+v", sp.ID, sp)
			}
		}
	}
	// The event log carries the admissions and the publication.
	var admitted, published int
	for _, ev := range snap.Events {
		switch ev.Type {
		case "batch_admitted":
			admitted++
		case "generation_published":
			published++
			if ev.Attrs["records"] != 100 || ev.Attrs["delta"] != 100 {
				t.Fatalf("generation_published attrs: %+v", ev.Attrs)
			}
		}
	}
	if admitted != 4 || published != 1 {
		t.Fatalf("events: %d admitted, %d published (%+v)", admitted, published, snap.Events)
	}
}

// TestIngestBackpressureTraced checks the rejection path emits a
// batch_rejected event and ends the admit span with the backpressure
// attribute.
func TestIngestBackpressureTraced(t *testing.T) {
	tr := obs.NewTracer(simclock.NewManual(simclock.StudyStart), 64)
	e := newTestEngine(t, Config{Shards: 1, QueueDepth: 1, BatchMax: 1 << 20, Trace: tr})
	// Occupy the consumer and fill the queue: the first batch may be
	// picked up immediately, so keep sending until one is rejected.
	recs := genRecords(200)
	var rejected bool
	for i := 0; i < 1000 && !rejected; i++ {
		res, err := e.Ingest(recs)
		if err != nil {
			t.Fatal(err)
		}
		rejected = res.Backpressured > 0
	}
	if !rejected {
		t.Fatal("queue of depth 1 never backpressured")
	}
	snap := tr.Snapshot()
	var ev, sp bool
	for _, e := range snap.Events {
		if e.Type == "batch_rejected" {
			ev = true
		}
	}
	for _, s := range snap.Spans {
		if s.Name == "ingest.admit" && s.Attrs["backpressured"] > 0 {
			sp = true
		}
	}
	if !ev || !sp {
		t.Fatalf("rejection not traced (event=%v span=%v): %+v", ev, sp, snap)
	}
}

// TestServerTraceEndpoint drives the HTTP surface end to end: ingest a
// batch, cut an epoch, run a query, then check /v1/trace shows the
// full span vocabulary and /debug/vmp serves the combined snapshot.
func TestServerTraceEndpoint(t *testing.T) {
	tr := obs.NewTracer(simclock.NewManual(simclock.StudyStart), 256)
	_, srv, e := newTestServer(t, Config{Shards: 2, QueueDepth: 64, Trace: tr})
	client := srv.Client()

	resp := postViews(t, client, srv.URL, genRecords(50))
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("ingest status %d", resp.StatusCode)
	}
	e.Snapshot()
	qresp, err := client.Get(srv.URL + "/v1/query/share?dim=protocol")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, qresp.Body)
	_ = qresp.Body.Close()
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", qresp.StatusCode)
	}

	tresp, err := client.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tresp.Body.Close() }()
	if tresp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace status %d", tresp.StatusCode)
	}
	var snap obs.TraceSnapshot
	if err := json.NewDecoder(tresp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, sp := range snap.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"ingest.batch", "ingest.scan", "ingest.admit", "epoch.cut", "query.share"} {
		if !names[want] {
			t.Fatalf("missing span %q in /v1/trace (have %v)", want, names)
		}
	}
	types := map[string]bool{}
	for _, ev := range snap.Events {
		types[ev.Type] = true
	}
	for _, want := range []string{"batch_admitted", "epoch_cut", "generation_published"} {
		if !types[want] {
			t.Fatalf("missing event %q in /v1/trace (have %v)", want, types)
		}
	}

	dresp, err := client.Get(srv.URL + "/debug/vmp")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = dresp.Body.Close() }()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vmp status %d", dresp.StatusCode)
	}
	var dbg obs.DebugSnapshot
	if err := json.NewDecoder(dresp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Metrics.Counters["live_ingest_records_total"] != 50 {
		t.Fatalf("debug metrics ingested: %+v", dbg.Metrics.Counters)
	}
	if dbg.Trace.SpansTotal == 0 {
		t.Fatal("debug trace empty")
	}
}
