package live

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"vmp/internal/obs"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
	"vmp/internal/wal"
	"vmp/internal/wire"
)

// The engine-WAL contract tests: durability precedes acknowledgement,
// an epoch commit makes replay reconstruct exactly the published
// generation, and a crash between admission and the next epoch loses
// nothing that was acknowledged.

var _ WAL = (*wal.Log)(nil)

func openTestWAL(t *testing.T, dir string, shards int) *wal.Log {
	t.Helper()
	l, err := wal.Open(wal.Options{
		Dir:    dir,
		Shards: shards,
		Policy: wal.PolicyBatch,
		Clock:  simclock.NewManual(simclock.StudyStart),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = l.Close() })
	return l
}

// genJSONL renders a generation the canonical way; byte equality of
// two generations is the pipeline's definition of "same data".
func genJSONL(t *testing.T, g *Generation) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.EncodeJSONL(&buf, g.Dataset.All()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// replayInto streams a WAL into an engine through the normal Ingest
// path, the way vmpd's boot sequence does.
func replayInto(t *testing.T, l *wal.Log, e *Engine) {
	t.Helper()
	if _, err := l.Replay(func(recs []telemetry.ViewRecord) error {
		for {
			res, err := e.Ingest(recs)
			if err != nil {
				return err
			}
			if res.Backpressured == 0 {
				return nil
			}
		}
	}, 0); err != nil {
		t.Fatal(err)
	}
}

// postBinary sends one binary-encoded batch to a server's ingest
// endpoint and returns the status.
func postBinary(t *testing.T, url string, recs []telemetry.ViewRecord) int {
	t.Helper()
	frame, err := wire.NewEncoder().AppendFrame(nil, recs)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/views", wire.ContentTypeBinary, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	return resp.StatusCode
}

func get(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, body)
	}
	return body
}

// TestWALKillPointCrashConsistency is the kill-point test: batches are
// acknowledged over HTTP by a WAL-backed engine, the engine is dropped
// without ever cutting an epoch (the crash window where all acked data
// lives only in queues, pending buffers, and the WAL), and a rebuilt
// engine replaying that WAL must answer every query byte-identically
// to an engine that never crashed.
func TestWALKillPointCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(2000)

	wlog := openTestWAL(t, dir, 4)
	crashed := NewEngine(Config{Shards: 4, Clock: simclock.NewManual(simclock.StudyStart), WAL: wlog})
	srv := httptest.NewServer(NewServer(crashed).Handler())
	for lo := 0; lo < len(recs); lo += 500 {
		if code := postBinary(t, srv.URL, recs[lo:lo+500]); code != http.StatusAccepted {
			t.Fatalf("POST batch at %d: status %d", lo, code)
		}
	}
	srv.Close()
	// "Crash": the engine is abandoned with every acked record still
	// volatile — no Snapshot, no Close-time final epoch, no WAL commit.
	// (Detaching first keeps the leaked-goroutine cleanup below from
	// writing a shutdown epoch into the WAL, which a real crash never
	// would.)
	crashed.AttachWAL(nil)
	defer crashed.Close()
	if err := wlog.Close(); err != nil {
		t.Fatal(err)
	}

	// The no-crash control: same records, no WAL, one epoch.
	control := newTestEngine(t, Config{Shards: 4})
	mustIngest(t, control, recs)
	control.Snapshot()

	// Recovery: reopen the directory, replay through Ingest, attach,
	// cut the boot epoch — vmpd's exact boot sequence.
	wlog2 := openTestWAL(t, dir, 4)
	rebuilt := newTestEngine(t, Config{Shards: 4})
	replayInto(t, wlog2, rebuilt)
	rebuilt.AttachWAL(wlog2)
	rebuilt.Snapshot()

	if !bytes.Equal(genJSONL(t, rebuilt.Generation()), genJSONL(t, control.Generation())) {
		t.Fatal("rebuilt generation differs from the no-crash control")
	}

	day := simclock.StudyStart.Format("2006-01-02")
	ctlSrv := httptest.NewServer(NewServer(control).Handler())
	defer ctlSrv.Close()
	rbSrv := httptest.NewServer(NewServer(rebuilt).Handler())
	defer rbSrv.Close()
	for _, q := range []string{
		"/v1/query/share?dim=protocol",
		"/v1/query/share?dim=cdn&by=views",
		"/v1/query/top-publishers?n=5",
		"/v1/query/window?start=" + day + "&days=3",
	} {
		want := get(t, ctlSrv.URL+q)
		got := get(t, rbSrv.URL+q)
		if !bytes.Equal(got, want) {
			t.Fatalf("%s answers differ after crash recovery:\n got: %s\nwant: %s", q, got, want)
		}
	}
}

// TestWALReplayIdempotent pins replay idempotence at the engine level:
// replaying the same WAL twice into two fresh engines publishes
// byte-identical generations.
func TestWALReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	recs := genRecords(1200)
	wlog := openTestWAL(t, dir, 4)
	e := newTestEngine(t, Config{Shards: 4, WAL: wlog})
	mustIngest(t, e, recs[:700])
	e.Snapshot() // commit + truncate: replay must cross the checkpoint
	mustIngest(t, e, recs[700:])
	e.Flush() // admitted but uncommitted: the segment tail

	var gens [][]byte
	for i := 0; i < 2; i++ {
		re := newTestEngine(t, Config{Shards: 4})
		replayInto(t, wlog, re)
		re.Snapshot()
		gens = append(gens, genJSONL(t, re.Generation()))
	}
	if !bytes.Equal(gens[0], gens[1]) {
		t.Fatal("double replay published different generations")
	}
	control := newTestEngine(t, Config{Shards: 4})
	mustIngest(t, control, recs)
	control.Snapshot()
	if !bytes.Equal(gens[0], genJSONL(t, control.Generation())) {
		t.Fatal("replayed generation differs from direct ingest of the same records")
	}
}

// TestWALCommitTruncatesOnEpoch: each published epoch folds the WAL
// forward — after Snapshot, a fresh replay serves the generation from
// the checkpoint, and the appended segments are gone.
func TestWALCommitTruncatesOnEpoch(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	wlog, err := wal.Open(wal.Options{
		Dir:     dir,
		Shards:  4,
		Policy:  wal.PolicyBatch,
		Clock:   simclock.NewManual(simclock.StudyStart),
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = wlog.Close() })
	e := newTestEngine(t, Config{Shards: 4, Metrics: reg, WAL: wlog})
	recs := genRecords(900)
	mustIngest(t, e, recs)
	g := e.Snapshot()
	if g.Records != 900 {
		t.Fatalf("epoch holds %d records, want 900", g.Records)
	}
	snap := reg.Snapshot()
	if snap.Counters["wal_truncated_total"] == 0 {
		t.Fatal("epoch publish did not truncate the WAL")
	}
	if snap.Counters["live_wal_errors_total"] != 0 {
		t.Fatalf("wal errors during clean run: %d", snap.Counters["live_wal_errors_total"])
	}
	re := newTestEngine(t, Config{Shards: 4})
	replayInto(t, wlog, re)
	re.Snapshot()
	if !bytes.Equal(genJSONL(t, re.Generation()), genJSONL(t, g2gen(e))) {
		t.Fatal("checkpoint replay does not reconstruct the published generation")
	}
}

func g2gen(e *Engine) *Generation { return e.Generation() }

// errWAL fails every append, to pin the rejection contract.
type errWAL struct{}

func (w *errWAL) AppendBatch([][]telemetry.ViewRecord, obs.SpanID) error {
	return errors.New("disk on fire")
}
func (w *errWAL) Bounds() []uint64                                                 { return make([]uint64, 4) }
func (w *errWAL) Commit(int64, []telemetry.ViewRecord, []uint64, obs.SpanID) error { return nil }

// TestWALAppendErrorRejectsBatchWhole: a WAL append failure must
// reject the batch with nothing enqueued (503 over HTTP, counted), so
// the client's retry cannot duplicate records.
func TestWALAppendErrorRejectsBatchWhole(t *testing.T) {
	reg := obs.NewRegistry()
	e := newTestEngine(t, Config{Shards: 4, Metrics: reg, WAL: &errWAL{}})
	srv := httptest.NewServer(NewServer(e).Handler())
	defer srv.Close()
	if code := postBinary(t, srv.URL, genRecords(100)); code != http.StatusServiceUnavailable {
		t.Fatalf("ingest with failing WAL: status %d, want 503", code)
	}
	if n := reg.Snapshot().Counters["live_wal_errors_total"]; n != 1 {
		t.Fatalf("live_wal_errors_total = %d, want 1", n)
	}
	e.AttachWAL(nil)
	if g := e.Snapshot(); g.Records != 0 {
		t.Fatalf("%d records enqueued despite WAL failure", g.Records)
	}
}
