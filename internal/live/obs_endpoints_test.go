package live

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"vmp/internal/obs"
	"vmp/internal/wire"
)

// TestServerAckHistograms posts one JSONL and one binary batch and
// checks each landed exactly one observation in its own ingest.ack
// histogram — the encoding split the SLO contract promises.
func TestServerAckHistograms(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 4})
	all := genRecords(200)

	resp := postViews(t, srv.Client(), srv.URL, all[:100])
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("jsonl ingest = %s", resp.Status)
	}
	resp = postRaw(t, srv.Client(), srv.URL, wire.ContentTypeBinary, "", encodeBinary(t, all[100:]))
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("binary ingest = %s", resp.Status)
	}

	snap := e.Metrics().Snapshot()
	if n := snap.Histograms["live_ingest_ack_jsonl_seconds"].Count; n != 1 {
		t.Fatalf("jsonl ack count = %d, want 1", n)
	}
	if n := snap.Histograms["live_ingest_ack_binary_seconds"].Count; n != 1 {
		t.Fatalf("binary ack count = %d, want 1", n)
	}

	// A rejected batch must not close an ack window: the SLO measures
	// arrival → 202, nothing else. Corrupt gzip cuts the stream short
	// and draws a 400.
	resp = postRaw(t, srv.Client(), srv.URL, "application/x-ndjson", "gzip", []byte("not gzip"))
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt body = %s, want 400", resp.Status)
	}
	snap = e.Metrics().Snapshot()
	if n := snap.Histograms["live_ingest_ack_jsonl_seconds"].Count; n != 1 {
		t.Fatalf("jsonl ack count after rejected batch = %d, want still 1", n)
	}
}

// TestMetricsEndpointsAgree fetches /metrics and /v1/metrics from a
// quiet server and checks the Prometheus exposition carries exactly
// the JSON snapshot's values — two renderings of one registry.
func TestMetricsEndpointsAgree(t *testing.T) {
	_, srv, e := newTestServer(t, Config{Shards: 4})
	resp := postViews(t, srv.Client(), srv.URL, genRecords(500))
	resp.Body.Close()
	e.Snapshot()

	var snap obs.Snapshot
	if err := json.Unmarshal(getBody(t, srv.Client(), srv.URL+"/v1/metrics"), &snap); err != nil {
		t.Fatal(err)
	}
	prom, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	promBody, _ := io.ReadAll(prom.Body)
	prom.Body.Close()
	if ct := prom.Header.Get("Content-Type"); ct != obs.ContentTypeProm {
		t.Fatalf("/metrics content type = %q", ct)
	}
	samples := map[string]string{}
	for _, line := range strings.Split(string(promBody), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if name, val, ok := strings.Cut(line, " "); ok {
			samples[name] = val
		}
	}
	for name, v := range snap.Counters {
		if samples[name] != strconv.FormatInt(v, 10) {
			t.Fatalf("counter %s: prom %q vs json %d", name, samples[name], v)
		}
	}
	for name, v := range snap.Gauges {
		if samples[name] != strconv.FormatInt(v, 10) {
			t.Fatalf("gauge %s: prom %q vs json %d", name, samples[name], v)
		}
	}
	if samples["live_ingest_records_total"] != "500" {
		t.Fatalf("live_ingest_records_total = %q, want 500", samples["live_ingest_records_total"])
	}
}

// TestSeriesEndpoint wires a ring into the engine, records one point
// the way the sampler does, and reads it back through /v1/series.
func TestSeriesEndpoint(t *testing.T) {
	ring := obs.NewSeriesRing(8)
	_, srv, e := newTestServer(t, Config{Shards: 4, Series: ring})
	resp := postViews(t, srv.Client(), srv.URL, genRecords(300))
	resp.Body.Close()
	e.Snapshot()
	e.PublishGauges()
	ring.Record(e.clock.Now(), e.Metrics().Snapshot())

	var series obs.SeriesSnapshot
	if err := json.Unmarshal(getBody(t, srv.Client(), srv.URL+"/v1/series"), &series); err != nil {
		t.Fatal(err)
	}
	if len(series.Points) != 1 {
		t.Fatalf("series points = %d, want 1", len(series.Points))
	}
	p := series.Points[0]
	if p.Counters["live_ingest_records_total"] != 300 {
		t.Fatalf("series counter = %d, want 300", p.Counters["live_ingest_records_total"])
	}
	if p.Gauges["live_generation_records"] != 300 {
		t.Fatalf("series generation gauge = %d, want 300", p.Gauges["live_generation_records"])
	}
	if h, ok := p.Hists["live_ingest_ack_jsonl_seconds"]; !ok || h.Count != 1 {
		t.Fatalf("series ack histogram = %+v (present %v)", h, ok)
	}
}

// TestPublishGauges pins the sampler-source contract: queue depths,
// generation identity, and age all land in the registry.
func TestPublishGauges(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4})
	if _, err := e.Ingest(genRecords(100)); err != nil {
		t.Fatal(err)
	}
	e.Snapshot()
	e.PublishGauges()
	snap := e.Metrics().Snapshot()
	if snap.Gauges["live_generation_epoch"] != 1 {
		t.Fatalf("live_generation_epoch = %d, want 1", snap.Gauges["live_generation_epoch"])
	}
	if snap.Gauges["live_generation_records"] != 100 {
		t.Fatalf("live_generation_records = %d, want 100", snap.Gauges["live_generation_records"])
	}
	if snap.Gauges["live_generation_age_ms"] < 0 {
		t.Fatalf("live_generation_age_ms = %d, want >= 0", snap.Gauges["live_generation_age_ms"])
	}
	// After the snapshot drained the queues, total and per-shard
	// depths are zero — and every shard has its own gauge.
	if snap.Gauges["live_queue_depth_batches"] != 0 {
		t.Fatalf("live_queue_depth_batches = %d, want 0", snap.Gauges["live_queue_depth_batches"])
	}
	for i := 0; i < 4; i++ {
		name := "live_shard_00" + strconv.Itoa(i) + "_queue_depth_batches"
		if _, ok := snap.Gauges[name]; !ok {
			t.Fatalf("missing per-shard gauge %s", name)
		}
	}
}
