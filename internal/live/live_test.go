package live

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// genRecords builds a deterministic, shard-spreading record set: many
// publishers, mixed protocols/devices/CDNs, and deliberately colliding
// timestamps so canonical ordering (not arrival order) is what makes
// generations reproducible.
func genRecords(n int) []telemetry.ViewRecord {
	urls := []string{"http://cdn/a.m3u8", "http://cdn/b.mpd", "http://cdn/c.ism", "http://cdn/d.f4m"}
	devices := []string{"Roku", "iPhone", "HTML5", "FireTV"}
	cdns := [][]string{{"A"}, {"B"}, {"A", "B"}, {"C"}}
	recs := make([]telemetry.ViewRecord, n)
	for i := range recs {
		recs[i] = telemetry.ViewRecord{
			Timestamp: simclock.DayTime(i % 50),
			Publisher: fmt.Sprintf("pub-%02d", i%17),
			VideoID:   fmt.Sprintf("v-%03d", i%101),
			URL:       urls[i%len(urls)],
			Device:    devices[i%len(devices)],
			CDNs:      cdns[i%len(cdns)],
			Geo:       fmt.Sprintf("US-%02d", i%7),
			ViewSec:   float64(30 + i%900),
			Weight:    1 + float64(i%5),
		}
	}
	return recs
}

func newTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	if cfg.Clock == nil {
		cfg.Clock = simclock.NewManual(simclock.StudyStart)
	}
	e := NewEngine(cfg)
	t.Cleanup(func() { e.Close() })
	return e
}

func mustIngest(t *testing.T, e *Engine, recs []telemetry.ViewRecord) {
	t.Helper()
	// Send in small batches, retrying on backpressure, so tests with
	// small queues still land every record.
	for lo := 0; lo < len(recs); lo += 500 {
		hi := lo + 500
		if hi > len(recs) {
			hi = len(recs)
		}
		for {
			res, err := e.Ingest(recs[lo:hi])
			if err != nil {
				t.Fatal(err)
			}
			if res.Backpressured == 0 {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestShardOfDeterministicAndSpread(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 8})
	recs := genRecords(2000)
	seen := make(map[int]int)
	for i := range recs {
		s1 := e.shardOf(&recs[i])
		s2 := e.shardOf(&recs[i])
		if s1 != s2 {
			t.Fatalf("shardOf not deterministic: %d vs %d", s1, s2)
		}
		seen[s1]++
	}
	if len(seen) < 4 {
		t.Fatalf("2000 records landed on only %d of 8 shards", len(seen))
	}
}

func TestIngestSnapshotIncludesEverything(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4})
	recs := genRecords(3000)
	mustIngest(t, e, recs)
	g := e.Snapshot()
	if g.Records != len(recs) {
		t.Fatalf("generation has %d records, want %d", g.Records, len(recs))
	}
	if g.Epoch != 1 {
		t.Fatalf("epoch = %d, want 1", g.Epoch)
	}
}

// TestGenerationCanonical ingests the same record set in two different
// arrival orders on engines with different shard counts and expects
// byte-identical query answers: the generation depends on the record
// set, not on how ingestion interleaved.
func TestGenerationCanonical(t *testing.T) {
	recs := genRecords(2500)
	shareBytes := func(shards int, reverse bool) []byte {
		e := newTestEngine(t, Config{Shards: shards})
		in := make([]telemetry.ViewRecord, len(recs))
		copy(in, recs)
		if reverse {
			for i, j := 0, len(in)-1; i < j; i, j = i+1, j-1 {
				in[i], in[j] = in[j], in[i]
			}
		}
		mustIngest(t, e, in)
		g := e.Snapshot()
		var buf bytes.Buffer
		for _, dim := range []string{"protocol", "platform", "cdn"} {
			resp, err := ShareOver(g.Dataset, dim, "viewhours")
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&buf, resp); err != nil {
				t.Fatal(err)
			}
		}
		if err := WriteJSON(&buf, TopPublishersOver(g.Dataset, 10)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	first := shareBytes(1, false)
	if !bytes.Equal(first, shareBytes(8, false)) {
		t.Fatal("answers differ across shard counts")
	}
	if !bytes.Equal(first, shareBytes(5, true)) {
		t.Fatal("answers differ across arrival orders")
	}
}

// TestOfflineOnlineEquivalence is the end-to-end equivalence contract:
// for the same record set, the published generation's query answers
// are byte-identical to an offline dataset built straight from the
// records — the same comparison the CI smoke stage runs against
// vmpstudy.
func TestOfflineOnlineEquivalence(t *testing.T) {
	recs := genRecords(4000)

	offline := make([]telemetry.ViewRecord, len(recs))
	copy(offline, recs)
	telemetry.CanonicalSort(offline)
	ods := telemetry.NewDataset(offline)

	e := newTestEngine(t, Config{Shards: 8})
	mustIngest(t, e, recs)
	g := e.Snapshot()

	for _, dim := range []string{"protocol", "platform", "cdn"} {
		for _, by := range []string{"viewhours", "views"} {
			var off, on bytes.Buffer
			offResp, err := ShareOver(ods, dim, by)
			if err != nil {
				t.Fatal(err)
			}
			onResp, err := ShareOver(g.Dataset, dim, by)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&off, offResp); err != nil {
				t.Fatal(err)
			}
			if err := WriteJSON(&on, onResp); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(off.Bytes(), on.Bytes()) {
				t.Fatalf("share(%s,%s) differs\noffline: %s\nonline:  %s", dim, by, off.String(), on.String())
			}
		}
	}
	var off, on bytes.Buffer
	if err := WriteJSON(&off, TopPublishersOver(ods, 15)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&on, TopPublishersOver(g.Dataset, 15)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), on.Bytes()) {
		t.Fatalf("top-publishers differs\noffline: %s\nonline:  %s", off.String(), on.String())
	}
	off.Reset()
	on.Reset()
	if err := WriteJSON(&off, WindowOver(ods, simclock.DayTime(0), 25)); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&on, WindowOver(g.Dataset, simclock.DayTime(0), 25)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(off.Bytes(), on.Bytes()) {
		t.Fatalf("window differs\noffline: %s\nonline:  %s", off.String(), on.String())
	}
}

// TestSnapshotConsistency holds a published generation across later
// ingests and epochs and expects its answers to stay byte-identical:
// publication is immutable.
func TestSnapshotConsistency(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 4})
	mustIngest(t, e, genRecords(2000))
	g1 := e.Snapshot()

	query := func(g *Generation) []byte {
		var buf bytes.Buffer
		resp, err := ShareOver(g.Dataset, "cdn", "viewhours")
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&buf, resp); err != nil {
			t.Fatal(err)
		}
		if err := WriteJSON(&buf, TopPublishersOver(g.Dataset, 5)); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	before := query(g1)

	more := genRecords(3000)[2000:] // a disjoint tail of the generator
	mustIngest(t, e, more)
	g2 := e.Snapshot()
	if g2.Epoch != g1.Epoch+1 {
		t.Fatalf("epoch = %d after %d", g2.Epoch, g1.Epoch)
	}
	if g2.Records != 3000 {
		t.Fatalf("new generation has %d records, want 3000", g2.Records)
	}
	if g1.Records != 2000 || g1.Dataset.Len() != 2000 {
		t.Fatalf("old generation mutated: %d records", g1.Dataset.Len())
	}
	if !bytes.Equal(before, query(g1)) {
		t.Fatal("retained generation's answers changed after a later epoch")
	}
}

// TestBackpressureRejectsWholeBatch fills a 1-shard, depth-1 queue
// while the consumer is blocked and expects the third batch to be
// rejected whole with a retry-after hint — and a concurrent query to
// proceed, because the append path and the query path share no lock.
func TestBackpressureRejectsWholeBatch(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 1, QueueDepth: 1, RetryAfter: 250 * time.Millisecond})
	sh := e.shards[0]

	sh.mu.Lock() // block the consumer's append
	released := false
	defer func() {
		if !released {
			sh.mu.Unlock()
		}
	}()

	recs := genRecords(30)
	if res, err := e.Ingest(recs[0:10]); err != nil || res.Accepted != 10 {
		t.Fatalf("first batch: %+v, %v", res, err)
	}
	// Wait for the consumer to pull batch 1 off the queue and block on
	// the held shard mutex.
	for i := 0; len(sh.ch) != 0; i++ {
		if i > 2000 { // ~2s of millisecond sleeps
			t.Fatal("consumer never pulled the first batch")
		}
		time.Sleep(time.Millisecond)
	}
	if res, err := e.Ingest(recs[10:20]); err != nil || res.Accepted != 10 {
		t.Fatalf("second batch: %+v, %v", res, err)
	}
	res, err := e.Ingest(recs[20:30])
	if err != nil {
		t.Fatal(err)
	}
	if res.Accepted != 0 || res.Backpressured != 10 {
		t.Fatalf("third batch not rejected whole: %+v", res)
	}
	if res.RetryAfter != 250*time.Millisecond {
		t.Fatalf("retry-after = %v", res.RetryAfter)
	}
	if got := e.Metrics().Counter("live_ingest_backpressured_total").Load(); got != 10 {
		t.Fatalf("backpressured counter = %d, want 10", got)
	}
	// Queries must not block on the stalled append path.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := ShareOver(e.Generation().Dataset, "protocol", ""); err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("query blocked while ingest was stalled")
	}

	released = true
	sh.mu.Unlock()
	// After releasing, everything admitted must drain into the epoch.
	g := e.Snapshot()
	if g.Records != 20 {
		t.Fatalf("generation has %d records, want 20 (10 rejected)", g.Records)
	}
}

func TestIngestAfterClose(t *testing.T) {
	e := NewEngine(Config{Shards: 2, Clock: simclock.NewManual(simclock.StudyStart)})
	mustIngest(t, e, genRecords(100))
	g := e.Close()
	if g.Records != 100 {
		t.Fatalf("final generation has %d records, want 100", g.Records)
	}
	if _, err := e.Ingest(genRecords(10)); err != ErrClosed {
		t.Fatalf("ingest after close: %v, want ErrClosed", err)
	}
	// Idempotent close and post-close snapshot are safe no-ops.
	if g2 := e.Close(); g2.Records != 100 {
		t.Fatalf("second close: %d records", g2.Records)
	}
	if g3 := e.Snapshot(); g3.Records != 100 {
		t.Fatalf("post-close snapshot: %d records", g3.Records)
	}
}

func TestRunCadence(t *testing.T) {
	e := newTestEngine(t, Config{Shards: 2, EpochEvery: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go e.Run(ctx)
	mustIngest(t, e, genRecords(200))
	for i := 0; ; i++ {
		g := e.Generation()
		if g.Epoch >= 2 && g.Records == 200 {
			break
		}
		if i > 5000 { // ~5s of millisecond sleeps
			t.Fatalf("cadence never published: epoch %d records %d", g.Epoch, g.Records)
		}
		time.Sleep(time.Millisecond)
	}
}
