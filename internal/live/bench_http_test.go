package live

import (
	"bytes"
	"compress/gzip"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"vmp/internal/simclock"
	"vmp/internal/telemetry"
	"vmp/internal/wire"
)

// benchHTTPIngest measures the full wire path: encode one 2000-record
// batch (encoder state reused across ops, exactly like vmpgen's
// driver), POST it over a real loopback HTTP connection, decode it on
// the server, and admit it into the engine. One op = one batch landed
// with a 202. The engine and server are recycled every 100 ops outside
// the timer so accumulated records don't turn this into a memory
// benchmark. The spread between these variants and BenchmarkLiveIngest
// (in-process admission, no wire) is the wire gap EXPERIMENTS.md
// tracks.
func benchHTTPIngest(b *testing.B, binary, compress bool) {
	recs := genRecords(2000)

	var (
		enc   *wire.Encoder
		gz    *gzip.Writer
		buf   bytes.Buffer
		frame []byte
	)
	if binary {
		enc = wire.NewEncoder()
	}
	encode := func() []byte {
		buf.Reset()
		var w io.Writer = &buf
		if compress {
			if gz == nil {
				gz = gzip.NewWriter(&buf)
			} else {
				gz.Reset(&buf)
			}
			w = gz
		}
		if binary {
			var err error
			frame, err = enc.AppendFrame(frame[:0], recs)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.Write(frame); err != nil {
				b.Fatal(err)
			}
		} else if err := telemetry.EncodeJSONL(w, recs); err != nil {
			b.Fatal(err)
		}
		if compress {
			if err := gz.Close(); err != nil {
				b.Fatal(err)
			}
		}
		return buf.Bytes()
	}

	contentType := wire.ContentTypeJSONL
	if binary {
		contentType = wire.ContentTypeBinary
	}

	var (
		e      *Engine
		srv    *httptest.Server
		client *http.Client
	)
	boot := func() {
		e = NewEngine(Config{Shards: 8, QueueDepth: 64, Clock: simclock.NewManual(simclock.StudyStart)})
		srv = httptest.NewServer(NewServer(e).Handler())
		client = srv.Client()
	}
	shutdown := func() {
		srv.Close()
		e.Close()
	}
	boot()
	defer func() { shutdown() }()

	body := encode()
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i > 0 && i%100 == 0 {
			b.StopTimer()
			shutdown()
			boot()
			b.StartTimer()
		}
		body := encode()
		for {
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/views", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			req.Header.Set("Content-Type", contentType)
			if compress {
				req.Header.Set("Content-Encoding", "gzip")
			}
			resp, err := client.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusAccepted {
				break
			}
			if resp.StatusCode != http.StatusTooManyRequests {
				b.Fatalf("ingest status = %s", resp.Status)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(2000*b.N)/b.Elapsed().Seconds(), "records/s")
}

// BenchmarkHTTPIngestJSONL is the pre-existing wire path: JSON lines,
// no compression — the 14× gap's "before" number.
func BenchmarkHTTPIngestJSONL(b *testing.B) { benchHTTPIngest(b, false, false) }

// BenchmarkHTTPIngestBinary posts binary batch frames.
func BenchmarkHTTPIngestBinary(b *testing.B) { benchHTTPIngest(b, true, false) }

// BenchmarkHTTPIngestBinaryGzip posts gzip-compressed binary frames —
// what a WAN sensor would send.
func BenchmarkHTTPIngestBinaryGzip(b *testing.B) { benchHTTPIngest(b, true, true) }

// BenchmarkHTTPIngestJSONLGzip compresses the JSONL fallback, isolating
// how much of the gzip cost is the encoding's verbosity.
func BenchmarkHTTPIngestJSONLGzip(b *testing.B) { benchHTTPIngest(b, false, true) }
