package live

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"vmp/internal/analytics"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// This file is the query vocabulary of the serving plane. Every
// response type here is computed and serialized identically whether it
// is served by vmpd from a published generation or printed offline by
// vmpstudy from a JSONL file — that shared code path is what the CI
// smoke stage's byte-identical online/offline comparison rests on.

// DimColumn resolves a query dimension name on a dataset.
func DimColumn(ds *telemetry.Dataset, dim string) (*telemetry.DimColumn, error) {
	switch dim {
	case "protocol":
		return ds.ProtocolCol(), nil
	case "platform":
		return ds.PlatformCol(), nil
	case "cdn":
		return ds.CDNCol(), nil
	}
	return nil, fmt.Errorf("live: unknown dimension %q (want protocol, platform, or cdn)", dim)
}

// Share is one dimension value's slice of the total.
type Share struct {
	Key string  `json:"key"`
	Pct float64 `json:"pct"`
}

// ShareResponse is the /v1/query/share payload.
type ShareResponse struct {
	Dim     string  `json:"dim"`
	By      string  `json:"by"`
	Records int     `json:"records"`
	Shares  []Share `json:"shares"`
}

// ShareOver computes each dimension value's percentage of total
// view-hours (by "viewhours", the paper's primary measure) or views
// (by "views") over the whole dataset. A record splits its measure
// evenly across its dimension values, exactly as the offline
// share-of analyses attribute multi-CDN views. Output is sorted by
// key, ascending, so rendering is deterministic.
func ShareOver(ds *telemetry.Dataset, dim, by string) (*ShareResponse, error) {
	col, err := DimColumn(ds, dim)
	if err != nil {
		return nil, err
	}
	useViews, err := byViews(by)
	if err != nil {
		return nil, err
	}
	resp := &ShareResponse{Dim: dim, By: byName(useViews), Records: ds.Len()}
	nKeys := col.Cardinality()
	keyVal := make([]float64, nKeys)
	keySeen := make([]bool, nKeys)
	keyOrder := make([]int32, 0, nKeys)
	total := 0.0
	for i := 0; i < ds.Len(); i++ {
		ids := col.IDs(i)
		if len(ids) == 0 {
			continue
		}
		m := ds.ViewHoursAt(i)
		if useViews {
			m = ds.ViewsAt(i)
		}
		total += m
		share := m / float64(len(ids))
		for _, k := range ids {
			if !keySeen[k] {
				keySeen[k] = true
				keyOrder = append(keyOrder, k)
			}
			keyVal[k] += share
		}
	}
	if total == 0 {
		resp.Shares = []Share{}
		return resp, nil
	}
	resp.Shares = make([]Share, 0, len(keyOrder))
	for _, k := range keyOrder {
		resp.Shares = append(resp.Shares, Share{Key: col.Name(k), Pct: 100 * keyVal[k] / total})
	}
	sort.Slice(resp.Shares, func(i, j int) bool { return resp.Shares[i].Key < resp.Shares[j].Key })
	return resp, nil
}

func byViews(by string) (bool, error) {
	switch by {
	case "", "viewhours":
		return false, nil
	case "views":
		return true, nil
	}
	return false, fmt.Errorf("live: unknown measure %q (want viewhours or views)", by)
}

func byName(useViews bool) string {
	if useViews {
		return "views"
	}
	return "viewhours"
}

// TopPublisher is one row of a Top-K ranking.
type TopPublisher struct {
	Publisher string  `json:"publisher"`
	ViewHours float64 `json:"view_hours"`
	Pct       float64 `json:"pct"`
}

// TopPublishersResponse is the /v1/query/top-publishers payload.
type TopPublishersResponse struct {
	N       int            `json:"n"`
	Records int            `json:"records"`
	Total   float64        `json:"total_view_hours"`
	Top     []TopPublisher `json:"top"`
}

// TopPublishersOver ranks publishers by total view-hours over the
// whole dataset, ties broken by name ascending — the same total order
// the offline exclusion analyses use.
func TopPublishersOver(ds *telemetry.Dataset, n int) *TopPublishersResponse {
	if n <= 0 {
		n = 10
	}
	nPubs := ds.NumPublishers()
	vh := make([]float64, nPubs)
	total := 0.0
	for i := 0; i < ds.Len(); i++ {
		v := ds.ViewHoursAt(i)
		vh[ds.PublisherID(i)] += v
		total += v
	}
	ids := make([]int32, nPubs)
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if vh[a] != vh[b] {
			return vh[a] > vh[b]
		}
		return ds.PublisherName(a) < ds.PublisherName(b)
	})
	resp := &TopPublishersResponse{N: n, Records: ds.Len(), Total: total, Top: []TopPublisher{}}
	for i := 0; i < n && i < len(ids); i++ {
		pct := 0.0
		if total > 0 {
			pct = 100 * vh[ids[i]] / total
		}
		resp.Top = append(resp.Top, TopPublisher{
			Publisher: ds.PublisherName(ids[i]),
			ViewHours: vh[ids[i]],
			Pct:       pct,
		})
	}
	return resp
}

// WindowResponse is the /v1/query/window payload: the macroscopic
// stats of one time window, the serving-plane form of the §3 context
// table.
type WindowResponse struct {
	Start            string  `json:"start"`
	Days             int     `json:"days"`
	SampledViews     int     `json:"sampled_views"`
	ViewsRepresented float64 `json:"views_represented"`
	ViewHours        float64 `json:"view_hours"`
	DailyViewHours   float64 `json:"daily_view_hours"`
	Publishers       int     `json:"publishers"`
	DistinctGeos     int     `json:"distinct_geos"`
}

// WindowOver computes macro stats for the window [start, start+days).
func WindowOver(ds *telemetry.Dataset, start time.Time, days int) *WindowResponse {
	if days <= 0 {
		days = 1
	}
	snap := simclock.Snapshot{Start: start, Days: days}
	m := analytics.MacroDataset(ds, snap, days)
	return &WindowResponse{
		Start:            start.UTC().Format(time.RFC3339),
		Days:             days,
		SampledViews:     m.SampledViews,
		ViewsRepresented: m.ViewsRepresented,
		ViewHours:        m.ViewHours,
		DailyViewHours:   m.DailyViewHours,
		Publishers:       m.Publishers,
		DistinctGeos:     m.DistinctGeos,
	}
}

// MarshalResponse renders a query response as the one canonical byte
// sequence: compact JSON with a trailing newline, exactly what a
// json.Encoder emits. HTTP handlers marshal to memory first so an
// encode failure can still become a clean 500 before any byte reaches
// the client (httpdiscipline: status before body).
func MarshalResponse(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteJSON serializes a query response the one canonical way. vmpd's
// handlers and vmpstudy's offline answer mode both funnel through the
// same bytes, which is what makes the smoke-stage equality check a
// byte comparison.
func WriteJSON(w io.Writer, v any) error {
	b, err := MarshalResponse(v)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}
