package live

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"vmp/internal/obs"
	"vmp/internal/wire"
)

// Server exposes an Engine over HTTP: wire-level ingest on the
// collector's /v1/views contract (binary batch frames or the JSONL
// fallback, either one gzip-compressed — see wire.DecodeBody), the
// query API over the published generation, an admin snapshot trigger,
// and the shared observability surface (metrics, trace, debug).
type Server struct {
	engine *Engine
	tracer *obs.Tracer

	rejected   *obs.Counter
	scanErrors *obs.Counter
	qLatency   map[string]*obs.Histogram
	ackBinary  *obs.Histogram // ingest.ack SLO: POST arrival → 202, binary frames
	ackJSONL   *obs.Histogram // ingest.ack SLO: POST arrival → 202, JSONL

	// decoders recycles wire decoders across ingest requests; a
	// decoder's scratch is only reused after IngestSpan has copied the
	// batch into per-shard slices, which happens before the handler
	// returns it to the pool.
	decoders sync.Pool
}

// queryLatencyBounds are the per-endpoint latency buckets, in seconds.
var queryLatencyBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1}

// ackLatencyBounds are the ingest.ack SLO buckets, in seconds: POST
// arrival to the 202 acknowledgement, which under a batch-fsync WAL
// includes the fsync tax, so the range reaches further than the query
// buckets do.
var ackLatencyBounds = []float64{0.0001, 0.0005, 0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1, 5}

// NewServer wraps an engine. Metrics go to the engine's registry.
func NewServer(e *Engine) *Server {
	reg := e.Metrics()
	s := &Server{
		engine:     e,
		tracer:     e.Tracer(),
		rejected:   reg.Counter("live_ingest_rejected_total"),
		scanErrors: reg.Counter("live_ingest_scan_errors_total"),
		qLatency:   make(map[string]*obs.Histogram),
		ackBinary:  reg.Histogram("live_ingest_ack_binary_seconds", ackLatencyBounds),
		ackJSONL:   reg.Histogram("live_ingest_ack_jsonl_seconds", ackLatencyBounds),
	}
	for _, ep := range []string{"share", "top-publishers", "window"} {
		s.qLatency[ep] = reg.Histogram("live_query_"+ep+"_seconds", queryLatencyBounds)
	}
	s.decoders.New = func() any { return wire.NewDecoder() }
	return s
}

// Handler returns the serving plane's HTTP surface:
//
//	POST /v1/views                — JSONL ingest; 202 accepted,
//	                                429 + Retry-After on backpressure
//	POST /v1/snapshot             — force an epoch cut
//	GET  /v1/query/share          — ?dim=protocol|platform|cdn&by=viewhours|views
//	GET  /v1/query/top-publishers — ?n=10
//	GET  /v1/query/window         — ?start=RFC3339&days=2
//	GET  /v1/stats                — ingest counters + current epoch
//	GET  /v1/metrics              — obs registry snapshot (JSON)
//	GET  /metrics                 — same registry, Prometheus text format
//	GET  /v1/series               — in-process time series (snapshots + rates)
//	GET  /v1/trace                — recent spans, per-stage latency, event tail
//	GET  /debug/vmp               — metrics + trace combined
//	GET  /healthz                 — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/views", s.handleViews)
	mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	mux.HandleFunc("/v1/query/share", s.query("share", s.shareResponse))
	mux.HandleFunc("/v1/query/top-publishers", s.query("top-publishers", s.topResponse))
	mux.HandleFunc("/v1/query/window", s.query("window", s.windowResponse))
	mux.HandleFunc("/v1/stats", s.handleStats)
	obs.Mount(mux, s.engine.Metrics(), s.tracer, s.engine.Series())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleViews(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	defer func() { _ = r.Body.Close() }()
	ack := obs.StartWatch(s.engine.clock)
	root := s.tracer.Start("ingest.batch", 0)
	ssp := s.tracer.Start("ingest.scan", root.ID())
	dec := s.decoders.Get().(*wire.Decoder)
	defer s.decoders.Put(dec)
	batch, bad, info, err := wire.DecodeBody(r.Header, r.Body, dec)
	ssp.End(obs.KV("records", int64(len(batch))), obs.KV("bad", int64(bad)),
		obs.KV("binary", boolAttr(info.Binary)), obs.KV("gzip", boolAttr(info.Gzip)),
		obs.KV("bytes", info.Bytes))
	s.rejected.Add(int64(bad))
	if errors.Is(err, wire.ErrUnsupportedMedia) {
		// Negotiation failure: no body bytes were consumed, nothing to
		// count against the batch — the client simply spoke a media
		// type or content coding this server does not.
		root.End(obs.KV("unsupported_media", 1))
		http.Error(w, err.Error(), http.StatusUnsupportedMediaType)
		return
	}
	if err != nil {
		// Cut-short stream (oversized line, truncated or corrupt binary
		// frame, bad gzip, transport error): reject the whole batch so
		// a retry is exact, and count the event.
		s.scanErrors.Add(1)
		s.rejected.Add(int64(len(batch)))
		s.tracer.Emit("batch_rejected",
			obs.KV("records", int64(len(batch)+bad)), obs.KV("scan_error", 1))
		root.End(obs.KV("rejected", int64(len(batch)+bad)), obs.KV("scan_error", 1))
		http.Error(w, fmt.Sprintf("read error: %v", err), http.StatusBadRequest)
		return
	}
	res, err := s.engine.IngestSpan(batch, root.ID())
	if err != nil {
		root.End(obs.KV("records", int64(len(batch))), obs.KV("closed", 1))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Backpressured > 0 {
		// The backpressure contract: the whole batch was rejected,
		// nothing was enqueued, and the client should resend the same
		// batch after RetryAfter.
		secs := int(res.RetryAfter / time.Second)
		if res.RetryAfter%time.Second != 0 {
			secs++
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprintf(w, `{"accepted":0,"backpressured":%d,"rejected":%d,"retry_after_ms":%d}`+"\n",
			res.Backpressured, bad, res.RetryAfter.Milliseconds())
		root.End(obs.KV("backpressured", int64(res.Backpressured)), obs.KV("rejected", int64(bad)))
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, `{"accepted":%d,"backpressured":0,"rejected":%d}`+"\n", res.Accepted, bad)
	// The ingest.ack SLO window closes here: POST arrival → 202 on the
	// wire, split by body encoding so the binary path's cheaper decode
	// shows up as its own distribution.
	if info.Binary {
		ack.Stop(s.ackBinary)
	} else {
		ack.Stop(s.ackJSONL)
	}
	root.End(obs.KV("accepted", int64(res.Accepted)), obs.KV("rejected", int64(bad)))
}

// boolAttr renders a bool as a 0/1 span attribute.
func boolAttr(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g := s.engine.Snapshot()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"epoch":%d,"records":%d}`+"\n", g.Epoch, g.Records)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g := s.engine.Generation()
	snap := s.engine.Metrics().Snapshot()
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"epoch":%d,"records":%d,"ingested":%d,"backpressured":%d,"rejected":%d,"scan_errors":%d,"queued_batches":%d}`+"\n",
		g.Epoch, g.Records,
		snap.Counters["live_ingest_records_total"],
		snap.Counters["live_ingest_backpressured_total"],
		snap.Counters["live_ingest_rejected_total"],
		snap.Counters["live_ingest_scan_errors_total"],
		s.engine.queuedBatches())
}

// query wraps a response builder with method checking, latency
// observation, a per-request span, and canonical serialization.
func (s *Server) query(name string, build func(*http.Request) (any, error)) http.HandlerFunc {
	hist := s.qLatency[name]
	clock := s.engine.clock
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		sp := s.tracer.Start("query."+name, 0)
		start := clock.Now()
		resp, err := build(r)
		if err != nil {
			sp.End(obs.KV("ok", 0))
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		buf, err := MarshalResponse(resp)
		if err != nil {
			sp.End(obs.KV("ok", 0))
			http.Error(w, "encode error", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(buf); err != nil {
			sp.End(obs.KV("ok", 0))
			return
		}
		hist.Observe(clock.Now().Sub(start).Seconds())
		sp.End(obs.KV("ok", 1), obs.KV("epoch", s.engine.Generation().Epoch))
	}
}

func (s *Server) shareResponse(r *http.Request) (any, error) {
	dim := r.URL.Query().Get("dim")
	if dim == "" {
		dim = "protocol"
	}
	g := s.engine.Generation()
	return ShareOver(g.Dataset, dim, r.URL.Query().Get("by"))
}

func (s *Server) topResponse(r *http.Request) (any, error) {
	n := 10
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("live: bad n %q", q)
		}
		n = v
	}
	g := s.engine.Generation()
	return TopPublishersOver(g.Dataset, n), nil
}

func (s *Server) windowResponse(r *http.Request) (any, error) {
	q := r.URL.Query()
	startStr := q.Get("start")
	if startStr == "" {
		return nil, fmt.Errorf("live: window query requires start=RFC3339 (or YYYY-MM-DD)")
	}
	start, err := time.Parse(time.RFC3339, startStr)
	if err != nil {
		start, err = time.Parse("2006-01-02", startStr)
	}
	if err != nil {
		return nil, fmt.Errorf("live: bad start %q", startStr)
	}
	days := 2
	if d := q.Get("days"); d != "" {
		v, err := strconv.Atoi(d)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("live: bad days %q", d)
		}
		days = v
	}
	g := s.engine.Generation()
	return WindowOver(g.Dataset, start, days), nil
}
