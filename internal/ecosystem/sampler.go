package ecosystem

import (
	"fmt"
	"math"
	"time"

	"vmp/internal/device"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// deviceMixAt returns the view-hour weights over device models within a
// platform at study fraction f, encoding the within-platform trends of
// Fig 10: HTML5 overtaking Flash in browsers, Android catching up with
// iOS on mobile, Roku dominating set-tops.
func deviceMixAt(pl device.Platform, f float64) (models []string, weights []float64) {
	switch pl {
	case device.Browser:
		return []string{"HTML5", "Flash", "Silverlight"},
			[]float64{dist.Linear(f, 0.25, 0.58), dist.Linear(f, 0.60, 0.37), dist.Linear(f, 0.15, 0.05)}
	case device.Mobile:
		return []string{"iPhone", "iPad", "AndroidPhone", "AndroidTablet"},
			[]float64{dist.Linear(f, 0.42, 0.33), dist.Linear(f, 0.20, 0.17),
				dist.Linear(f, 0.28, 0.38), dist.Linear(f, 0.10, 0.12)}
	case device.SetTop:
		return []string{"Roku", "AppleTV", "FireTV", "Chromecast"},
			[]float64{0.54, 0.20, dist.Linear(f, 0.12, 0.17), dist.Linear(f, 0.14, 0.09)}
	case device.SmartTV:
		return []string{"SamsungTV", "LGTV", "VizioTV"}, []float64{0.50, 0.30, 0.20}
	default:
		return []string{"Xbox", "PlayStation"}, []float64{0.58, 0.42}
	}
}

// durationHours samples one view duration (hours) for a platform,
// matching Fig 8: only ~24% of mobile and browser views exceed 0.2
// hours while more than 60% of set-top views do.
func durationHours(src *dist.Source, pl device.Platform) float64 {
	var medianH, sigma float64
	switch pl {
	case device.Mobile:
		medianH, sigma = 0.055, 1.50
	case device.Browser:
		medianH, sigma = 0.070, 1.52
	case device.SetTop:
		medianH, sigma = 0.40, 0.95
	case device.SmartTV:
		medianH, sigma = 0.34, 1.0
	default: // Console
		medianH, sigma = 0.18, 1.1
	}
	d := src.LogNormal(math.Log(medianH), sigma)
	if d > 4 {
		d = 4 // sessions cap out at a long evening
	}
	if d < 0.003 {
		d = 0.003 // sub-10-second views are dropped by the collector
	}
	return d
}

// connTypeFor draws the access-network type given the platform.
func connTypeFor(src *dist.Source, pl device.Platform) netmodel.ConnType {
	switch pl {
	case device.Mobile:
		if src.Bool(0.45) {
			return netmodel.Cellular
		}
		return netmodel.WiFi
	case device.Browser:
		if src.Bool(0.55) {
			return netmodel.Wired
		}
		return netmodel.WiFi
	default:
		if src.Bool(0.30) {
			return netmodel.Wired
		}
		return netmodel.WiFi
	}
}

// GeoCount is the number of distinct viewer geographies the population
// serves (§3: "the publishers in our study together serve 180
// countries").
const GeoCount = 180

var geoZipf = dist.NewZipf(GeoCount, 1.1)

func geoFor(src *dist.Source) string {
	return fmt.Sprintf("G%03d", geoZipf.Draw(src))
}

// maxSamplesPerSnapshot bounds per-publisher sample counts so the
// synthetic census stays tractable; Weight carries the expansion.
const (
	minSamplesPerSnapshot = 24
	maxSamplesPerSnapshot = 420
)

// baseFailureRate is the organic fraction of views that abort on a
// fatal error, absent injected faults.
const baseFailureRate = 0.008

// sampleCount sizes a publisher's per-snapshot sample.
func sampleCount(viewHours float64) int {
	n := int(6 * math.Sqrt(viewHours))
	if n < minSamplesPerSnapshot {
		return minSamplesPerSnapshot
	}
	if n > maxSamplesPerSnapshot {
		return maxSamplesPerSnapshot
	}
	return n
}

// ladderFor returns the publisher's encoding ladder. Ladder height
// scales with publisher size — big publishers fund 4K-grade toplines.
func (e *Ecosystem) ladderFor(p *Publisher) manifest.Ladder {
	if l, ok := e.ladders[p.ID]; ok {
		return l
	}
	maxKbps := 1200 + 1400*int(p.Bucket)
	l := packaging.PerTitleLadder(e.root.Split("ladder-"+p.ID), maxKbps, 1)
	e.ladders[p.ID] = l
	return l
}

// samplePublisherSnapshot emits the sampled view records for one
// publisher in one snapshot window.
func (e *Ecosystem) samplePublisherSnapshot(p *Publisher, snap simclock.Snapshot) []telemetry.ViewRecord {
	mid := snap.Start.Add(time.Duration(snap.Days) * simclock.Day / 2)
	f := simclock.FractionThrough(mid)
	vh := p.DailyViewHoursAt(mid) * float64(snap.Days)
	src := e.root.Split("sample-" + p.ID + "-" + snap.Label())

	platforms := p.PlatformsAt(mid)
	if len(platforms) == 0 {
		return nil
	}
	// platformWeightAt gives view-HOUR weights; dividing by the
	// platform's mean view duration converts them to view-count
	// weights so that, after durations are sampled, each platform's
	// share of view-hours matches its configured weight.
	vhWeights := make([]float64, len(platforms))
	platWeights := make([]float64, len(platforms))
	var vhTotal, viewTotal float64
	for i, pl := range platforms {
		vhWeights[i] = p.platformWeightAt(pl, mid)
		platWeights[i] = vhWeights[i] / meanDurationHours(pl)
		vhTotal += vhWeights[i]
		viewTotal += platWeights[i]
	}
	if vhTotal == 0 {
		return nil
	}
	// E[duration] under the view mix converts view-hours into the real
	// view count the sample represents.
	meanDur := vhTotal / viewTotal
	realViews := vh / meanDur
	n := sampleCount(vh)
	weight := realViews / float64(n)

	ladder := e.ladderFor(p)
	zipf := e.catalogZipf(p)
	records := make([]telemetry.ViewRecord, 0, n)
	for i := 0; i < n; i++ {
		vsrc := src.Splitf("view", i)
		rec, ok := e.sampleView(p, mid, f, snap, vsrc, platforms, platWeights, ladder, zipf)
		if !ok {
			continue
		}
		rec.Weight = weight
		records = append(records, rec)
	}
	return records
}

// meanDurationHours is E[duration] for the platform's log-normal.
func meanDurationHours(pl device.Platform) float64 {
	switch pl {
	case device.Mobile:
		return 0.055 * math.Exp(1.50*1.50/2)
	case device.Browser:
		return 0.070 * math.Exp(1.52*1.52/2)
	case device.SetTop:
		return 0.40 * math.Exp(0.95*0.95/2)
	case device.SmartTV:
		return 0.34 * math.Exp(1.0/2)
	default:
		return 0.18 * math.Exp(1.1*1.1/2)
	}
}

func (e *Ecosystem) catalogZipf(p *Publisher) *dist.Zipf {
	if z, ok := e.zipfs[p.CatalogSize]; ok {
		return z
	}
	z := dist.NewZipf(p.CatalogSize, 0.9)
	e.zipfs[p.CatalogSize] = z
	return z
}

// sampleView draws one view record. It returns ok=false when no
// (device, protocol) combination is playable — rare, but possible for
// odd configs early in adoption.
func (e *Ecosystem) sampleView(p *Publisher, mid time.Time, f float64, snap simclock.Snapshot,
	src *dist.Source, platforms []device.Platform, platWeights []float64,
	ladder manifest.Ladder, zipf *dist.Zipf) (telemetry.ViewRecord, bool) {

	live := src.Split("live").Bool(p.LiveShare)

	// Pick platform → device → protocol, retrying on incompatibility.
	var (
		model device.Model
		proto manifest.Protocol
		pl    device.Platform
	)
	found := false
	for attempt := 0; attempt < 5 && !found; attempt++ {
		asrc := src.Splitf("attempt", attempt)
		pl = platforms[asrc.Categorical(platWeights)]
		names, weights := deviceMixAt(pl, f)
		model, _ = device.ByName(names[asrc.Categorical(weights)])
		proto, found = e.pickProtocol(p, model, mid, asrc)
	}
	if !found {
		// Fall back to the universal combination if the publisher has
		// it; otherwise drop the sample.
		if html5, ok := device.ByName("HTML5"); ok && p.SupportsPlatformAt(device.Browser, mid) {
			model, pl = html5, device.Browser
			var ok2 bool
			proto, ok2 = e.pickProtocol(p, model, mid, src.Split("fallback"))
			if !ok2 {
				return telemetry.ViewRecord{}, false
			}
		} else {
			return telemetry.ViewRecord{}, false
		}
	}

	// CDN selection honoring live/VoD segregation.
	assignments := p.CDNsAt(mid)
	cdnName, ok := pickCDN(assignments, live, src.Split("cdn"))
	if !ok {
		return telemetry.ViewRecord{}, false
	}
	cdns := []string{cdnName}
	if len(assignments) > 1 && src.Split("midstream").Bool(0.08) {
		if second, ok := pickCDN(assignments, live, src.Split("cdn2")); ok && second != cdnName {
			cdns = append(cdns, second)
		}
	}

	// Content identity and syndication.
	videoRank := zipf.Draw(src.Split("video"))
	videoID := p.VideoID(videoRank)
	contentID := videoID
	owner := ""
	syndicated := false
	if p.IsSyndicator && len(p.CarriesFrom) > 0 && src.Split("synd").Bool(p.SyndShare) {
		owner = p.CarriesFrom[src.Split("which-owner").Intn(len(p.CarriesFrom))]
		contentID = fmt.Sprintf("%s-v%04d", owner, videoRank%600)
		videoID = fmt.Sprintf("%s-s%04d", p.ID, videoRank)
		syndicated = true
	}

	durH := durationHours(src.Split("dur"), pl)
	conn := connTypeFor(src.Split("conn"), pl)
	isp := netmodel.ISPs[src.Split("isp").Intn(len(netmodel.ISPs))]
	ts := snap.Start.Add(time.Duration(src.Split("ts").Float64() * float64(snap.Days) * float64(simclock.Day)))

	// Fast-path QoE: an analytic stand-in for full playback, used for
	// population-scale generation. The §6 experiments re-measure QoE
	// with the real player on the slices they study.
	cdnObj, _ := e.CDNs.ByName(cdnName)
	quality := 0.7
	if cdnObj != nil {
		quality = cdnObj.Quality(isp.Name)
	}
	prof := netmodel.PathProfile(isp, conn, quality)
	qsrc := src.Split("qoe")
	achievable := prof.MeanKbps * qsrc.Uniform(0.5, 0.95)
	avgKbps := math.Min(float64(ladder.Max()), achievable*0.8)
	if avgKbps < float64(ladder.Min()) {
		avgKbps = float64(ladder.Min())
	}
	rebufSec := 0.0
	if qsrc.Bool(0.18) { // most views play clean; a tail rebuffers
		rebufSec = qsrc.Exponential(0.012 * durH * 3600)
	}
	// A small organic failure rate: views that hit a fatal error
	// mid-session (§5's troubleshooting raw material). Failures are
	// uniform here; the triage test harness injects the structured
	// faults.
	failed := qsrc.Bool(baseFailureRate)

	rec := telemetry.ViewRecord{
		Timestamp:      ts,
		Publisher:      p.ID,
		VideoID:        videoID,
		URL:            manifest.ManifestURL(proto, cdnBaseURL(cdnName, p.ID), videoID),
		Device:         model.Name,
		OS:             model.OS,
		CDNs:           cdns,
		Bitrates:       ladder.Bitrates(),
		ISP:            isp.Name,
		ConnType:       conn.String(),
		Geo:            geoFor(src.Split("geo")),
		Live:           live,
		Syndicated:     syndicated,
		ContentID:      contentID,
		Owner:          owner,
		ViewSec:        durH * 3600,
		AvgBitrateKbps: avgKbps,
		RebufferSec:    rebufSec,
		Failed:         failed,
	}
	ver := pickSDKVersion(model, mid, p.SDKLag, src.Split("sdk"))
	if model.Platform == device.Browser {
		rec.UserAgent = model.UserAgent(ver)
	} else {
		rec.SDK = ver.Family
		rec.SDKVersion = ver.Version
	}
	return rec, true
}

// pickProtocol chooses a streaming protocol compatible with both the
// publisher's packaging and the device, weighted by the publisher's
// protocol preferences.
func (e *Ecosystem) pickProtocol(p *Publisher, model device.Model, t time.Time, src *dist.Source) (manifest.Protocol, bool) {
	candidates := []manifest.Protocol{manifest.HLS, manifest.DASH, manifest.Smooth, manifest.HDS, manifest.RTMP}
	var protos []manifest.Protocol
	var weights []float64
	for _, proto := range candidates {
		if !model.Supports(proto) {
			continue
		}
		w := p.protocolWeightAt(proto, t)
		if proto == manifest.RTMP {
			if model.Name != "Flash" {
				continue
			}
			w = p.rtmpWeight0 * dist.Linear(simclock.FractionThrough(t), 1, 0.02)
			if p.rtmpWeight0 == 0 {
				continue
			}
		}
		if w <= 0 {
			continue
		}
		protos = append(protos, proto)
		weights = append(weights, w)
	}
	if len(protos) == 0 {
		return manifest.Unknown, false
	}
	return protos[src.Categorical(weights)], true
}

// pickSDKVersion draws the SDK version a user's device runs, lagging
// behind the newest release per the publisher's supported window.
func pickSDKVersion(model device.Model, t time.Time, lag int, src *dist.Source) device.SDKVersion {
	versions := model.VersionsInUse(t, lag)
	// Newer versions are more common; weight geometrically.
	weights := make([]float64, len(versions))
	w := 1.0
	for i := range versions {
		weights[i] = w
		w *= 0.55
	}
	return versions[src.Categorical(weights)]
}

// pickCDN selects a CDN name from assignments eligible for the content
// type.
func pickCDN(assignments []CDNAssignment, live bool, src *dist.Source) (string, bool) {
	var names []string
	var weights []float64
	for _, a := range assignments {
		if live && a.VoDOnly || !live && a.LiveOnly {
			continue
		}
		if a.Weight <= 0 {
			continue
		}
		names = append(names, a.Name)
		weights = append(weights, a.Weight)
	}
	if len(names) == 0 {
		return "", false
	}
	return names[src.Categorical(weights)], true
}

// cdnBaseURL mints the per-publisher base URL on a CDN host.
func cdnBaseURL(cdnName, pubID string) string {
	return fmt.Sprintf("http://cdn-%s.example.net/%s", cdnName, pubID)
}
