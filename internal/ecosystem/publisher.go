// Package ecosystem generates the synthetic dataset that stands in for
// the paper's proprietary Conviva data: a population of ~110 video
// publishers whose management-plane configurations (streaming
// protocols, playback platforms, CDNs) evolve over the 27-month study
// window, a syndication graph, and a per-snapshot view sampler that
// emits telemetry records through the packaging → CDN → player pipeline.
//
// Every longitudinal anchor the paper reports (DASH growth driven by a
// few large publishers, HDS decline, set-top ascent, CDN view-hour
// shifts, ...) is encoded as an adoption process here; the analytics
// layer then *rediscovers* those trends from the records, exercising
// the same analysis pipeline the paper ran.
package ecosystem

import (
	"fmt"
	"sort"
	"time"

	"vmp/internal/device"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
)

// Bucket is a publisher's view-hour decade: bucket b covers daily
// view-hours in [10^(b-1), 10^b) of the confidential unit X (bucket 0
// covers < X). The paper buckets publishers this way in Figs 3b, 9b,
// and 12b.
type Bucket int

// NumBuckets is the number of view-hour decades in the population,
// bucket 6 being the ">10^5 X" giants.
const NumBuckets = 7

// Publisher is one content publisher with its full management-plane
// configuration over time.
type Publisher struct {
	ID     string
	Bucket Bucket
	// DailyVH is the publisher's daily view-hours (in X units) at the
	// study midpoint; Growth scales it linearly ±Growth over the window.
	DailyVH float64
	Growth  float64

	// Packaging.
	hlsFrom     float64 // study fraction when HLS support begins; <0 = always, >1 = never
	dashFrom    float64
	smoothFrom  float64
	hdsFrom     float64
	hdsUntil    float64 // HDS support drops at this fraction (>1 = retained)
	rtmpWeight0 float64 // RTMP preference at study start (decays to ~0)
	DASHDriver  bool    // one of the N large publishers behind DASH growth
	DRM         bool

	// Playback.
	platformFrom [5]float64 // adoption fraction per device.Platform
	SDKLag       int        // quarters of legacy SDK versions supported

	// Distribution.
	cdnNames    []string  // assigned CDNs in adoption order
	cdnFrom     []float64 // adoption fraction per assigned CDN
	cdnLiveOnly []bool
	cdnVoDOnly  []bool
	shiftToBC   bool // large publishers shift view-hour weight from CDN A to B/C

	// Content.
	CatalogSize    int     // distinct titles
	LiveShare      float64 // fraction of views that are live
	MeanVideoHours float64 // mean title duration in hours

	// Syndication.
	IsSyndicator bool
	SyndicatesTo []string // syndicator publisher IDs carrying this owner's content
	CarriesFrom  []string // owner publisher IDs whose content this syndicator carries
	SyndShare    float64  // fraction of a syndicator's views that are syndicated content
}

// DailyViewHoursAt returns the publisher's daily view-hours at time t.
func (p *Publisher) DailyViewHoursAt(t time.Time) float64 {
	f := simclock.FractionThrough(t)
	return p.DailyVH * (1 + p.Growth*(f-0.5))
}

// SupportsProtocolAt reports whether the publisher's packaging pipeline
// emits the protocol at time t.
func (p *Publisher) SupportsProtocolAt(proto manifest.Protocol, t time.Time) bool {
	f := simclock.FractionThrough(t)
	switch proto {
	case manifest.HLS:
		return f >= p.hlsFrom
	case manifest.DASH:
		return f >= p.dashFrom
	case manifest.Smooth:
		return f >= p.smoothFrom
	case manifest.HDS:
		return f >= p.hdsFrom && f < p.hdsUntil
	case manifest.RTMP:
		return p.rtmpWeight0 > 0
	default:
		return false
	}
}

// ProtocolsAt returns the HTTP streaming protocols supported at t, in
// canonical order.
func (p *Publisher) ProtocolsAt(t time.Time) []manifest.Protocol {
	var out []manifest.Protocol
	for _, proto := range manifest.HTTPProtocols {
		if p.SupportsProtocolAt(proto, t) {
			out = append(out, proto)
		}
	}
	return out
}

// protocolWeightAt returns the view-hour preference weight for a
// supported protocol at time t; the sampler combines these with device
// compatibility. The weights encode Fig 4: HLS is the workhorse for
// most publishers, DASH carries real traffic only for the DASH drivers.
func (p *Publisher) protocolWeightAt(proto manifest.Protocol, t time.Time) float64 {
	if !p.SupportsProtocolAt(proto, t) {
		return 0
	}
	f := simclock.FractionThrough(t)
	switch proto {
	case manifest.HLS:
		return 1.0
	case manifest.DASH:
		if p.DASHDriver {
			// Ramp after adoption to dominate the driver's traffic.
			since := f - p.dashFrom
			if since < 0 {
				return 0
			}
			return 3.4 * minf(1, 0.15+since*3)
		}
		return 0.16
	case manifest.Smooth:
		return 0.55
	case manifest.HDS:
		return dist.Linear(f, 0.65, 0.18)
	case manifest.RTMP:
		return p.rtmpWeight0 * dist.Linear(f, 1, 0.05)
	default:
		return 0
	}
}

// SupportsPlatformAt reports whether the publisher ships a player/app
// for the platform at time t.
func (p *Publisher) SupportsPlatformAt(pl device.Platform, t time.Time) bool {
	return simclock.FractionThrough(t) >= p.platformFrom[int(pl)]
}

// PlatformsAt returns the platforms supported at t.
func (p *Publisher) PlatformsAt(t time.Time) []device.Platform {
	var out []device.Platform
	for _, pl := range device.Platforms {
		if p.SupportsPlatformAt(pl, t) {
			out = append(out, pl)
		}
	}
	return out
}

// platformWeightAt returns the view-hour weight of a supported platform
// at time t. The global trends of Fig 6a (browser decline, set-top
// ascent) are modulated per-publisher: large publishers skew to the
// living room, small publishers to mobile, which is what makes Fig 6b
// (excluding the giants) show mobile on top.
func (p *Publisher) platformWeightAt(pl device.Platform, t time.Time) float64 {
	if !p.SupportsPlatformAt(pl, t) {
		return 0
	}
	f := simclock.FractionThrough(t)
	size := float64(p.Bucket) / float64(NumBuckets-1) // 0 small .. 1 giant
	giant := p.Bucket == NumBuckets-1
	switch pl {
	case device.Browser:
		return dist.Linear(f, 1.5, 0.55)
	case device.Mobile:
		// Small and mid-size publishers are mobile-led; the giants'
		// audiences are living-room-led (subscription TV services).
		mult := 1.45 - 0.35*size
		if giant {
			mult = 0.60
		}
		return dist.Linear(f, 0.55, 0.75) * mult
	case device.SetTop:
		mult := 0.42 + 0.18*size
		if giant {
			mult = 1.15
		}
		return dist.Linear(f, 0.30, 1.0) * mult
	case device.SmartTV:
		return dist.Linear(f, 0.05, 0.13)
	case device.Console:
		return 0.12
	default:
		return 0
	}
}

// CDNAssignment describes one of the publisher's CDNs at a point in
// time.
type CDNAssignment struct {
	Name     string
	Weight   float64
	LiveOnly bool
	VoDOnly  bool
}

// CDNsAt returns the publisher's active CDN assignments at time t with
// their current view-hour weights.
func (p *Publisher) CDNsAt(t time.Time) []CDNAssignment {
	f := simclock.FractionThrough(t)
	var out []CDNAssignment
	for i, name := range p.cdnNames {
		if f < p.cdnFrom[i] {
			continue
		}
		w := 1.0
		if i > 0 {
			w = 0.5 // later CDNs carry less by default
		}
		if p.shiftToBC {
			// §4.3: CDN A's view-hour share declines while B and C
			// grow, a move driven by the large publishers.
			switch name {
			case "A":
				w = dist.Linear(f, 1.15, 0.50)
			case "B":
				w = dist.Linear(f, 0.38, 1.05)
			case "C":
				w = dist.Linear(f, 0.45, 0.95)
			default:
				w = 0.14
			}
		}
		out = append(out, CDNAssignment{
			Name:     name,
			Weight:   w,
			LiveOnly: p.cdnLiveOnly[i],
			VoDOnly:  p.cdnVoDOnly[i],
		})
	}
	return out
}

// CDNNamesAt returns just the names of the active CDNs at t, sorted.
func (p *Publisher) CDNNamesAt(t time.Time) []string {
	as := p.CDNsAt(t)
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	sort.Strings(names)
	return names
}

// VideoID returns the publisher-scoped identifier of the rank-th title
// in its catalogue.
func (p *Publisher) VideoID(rank int) string {
	return fmt.Sprintf("%s-v%04d", p.ID, rank)
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
