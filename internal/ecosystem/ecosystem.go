package ecosystem

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"vmp/internal/cdnsim"
	"vmp/internal/device"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// DefaultSeed is the seed every documented experiment uses.
const DefaultSeed = 1809 // IMC '18, October–November

// Config parameterizes ecosystem generation.
type Config struct {
	// Seed drives all randomness; zero means DefaultSeed.
	Seed uint64
	// Schedule is the snapshot plan; nil means the paper's bi-weekly
	// two-day schedule over Jan 2016 – Mar 2018.
	Schedule simclock.Schedule
	// SnapshotStride generates only every k-th snapshot (k >= 1); use
	// it to cut generation cost in tests. Zero means 1.
	SnapshotStride int
	// Parallelism is the number of snapshots generated concurrently by
	// GenerateStore. Zero means GOMAXPROCS. Generation is
	// deterministic regardless of parallelism: every record's content
	// depends only on (seed, publisher, snapshot), and the store
	// orders records by timestamp.
	Parallelism int
}

// Ecosystem is a generated publisher population together with the CDN
// infrastructure it distributes over.
type Ecosystem struct {
	Publishers []*Publisher
	CDNs       *cdnsim.Registry
	Schedule   simclock.Schedule

	root        *dist.Source
	parallelism int
	// ladders and zipfs are precomputed at construction and read-only
	// afterwards, so snapshot generation can run concurrently.
	ladders map[string]manifest.Ladder
	zipfs   map[int]*dist.Zipf
}

// New builds the ecosystem for cfg. The construction is deterministic:
// equal configs yield equal populations, record for record.
func New(cfg Config) *Ecosystem {
	seed := cfg.Seed
	if seed == 0 {
		seed = DefaultSeed
	}
	sched := cfg.Schedule
	if sched == nil {
		sched = simclock.DefaultSchedule()
	}
	if cfg.SnapshotStride > 1 {
		var strided simclock.Schedule
		for i := 0; i < len(sched); i += cfg.SnapshotStride {
			strided = append(strided, sched[i])
		}
		// Always retain the latest snapshot: every per-snapshot figure
		// uses it.
		if len(strided) == 0 || strided[len(strided)-1].Index != sched[len(sched)-1].Index {
			strided = append(strided, sched[len(sched)-1])
		}
		sched = strided
	}
	root := dist.NewSource(seed)
	e := &Ecosystem{
		CDNs:        cdnsim.NewRegistry(root.Split("cdns")),
		Schedule:    sched,
		root:        root,
		parallelism: cfg.Parallelism,
		ladders:     make(map[string]manifest.Ladder),
		zipfs:       make(map[int]*dist.Zipf),
	}
	e.Publishers = buildPopulation(root.Split("population"))
	// Precompute the per-publisher ladders and catalogue popularity
	// distributions so sampling never writes shared state.
	for _, p := range e.Publishers {
		e.ladderFor(p)
		e.catalogZipf(p)
	}
	return e
}

// PublisherByID returns the publisher with the given ID.
func (e *Ecosystem) PublisherByID(id string) (*Publisher, bool) {
	for _, p := range e.Publishers {
		if p.ID == id {
			return p, true
		}
	}
	return nil, false
}

// GenerateStore runs the sampler over every publisher and snapshot and
// returns the assembled view-record store: the synthetic counterpart of
// the paper's dataset. Snapshots are generated in parallel (see
// Config.Parallelism); the result is identical to serial generation.
func (e *Ecosystem) GenerateStore() *telemetry.Store {
	workers := e.parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(e.Schedule) {
		workers = len(e.Schedule)
	}
	store := telemetry.NewStore()
	if workers <= 1 {
		for _, snap := range e.Schedule {
			store.Append(e.GenerateSnapshot(snap)...)
		}
		return store
	}
	var wg sync.WaitGroup
	jobs := make(chan simclock.Snapshot)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for snap := range jobs {
				store.Append(e.GenerateSnapshot(snap)...)
			}
		}()
	}
	for _, snap := range e.Schedule {
		jobs <- snap
	}
	close(jobs)
	wg.Wait()
	return store
}

// GenerateSnapshot samples just one snapshot window across the
// population.
func (e *Ecosystem) GenerateSnapshot(snap simclock.Snapshot) []telemetry.ViewRecord {
	var out []telemetry.ViewRecord
	for _, p := range e.Publishers {
		out = append(out, e.samplePublisherSnapshot(p, snap)...)
	}
	return out
}

// Inventory is the per-publisher management-plane metadata at one
// instant: the inputs to the §5 complexity metrics. It is derived from
// publisher configuration rather than sampled records, matching the
// paper's use of full-dataset knowledge.
type Inventory struct {
	Publisher    string
	DailyVH      float64
	Protocols    []manifest.Protocol
	CDNs         []string
	Platforms    []device.Platform
	DeviceModels []string // concrete models reachable at t
	SDKVersions  []string // unique SDK/browser versions supported
	CatalogSize  int
}

// InventoryAt captures every publisher's inventory at time t.
func (e *Ecosystem) InventoryAt(t time.Time) []Inventory {
	out := make([]Inventory, 0, len(e.Publishers))
	f := simclock.FractionThrough(t)
	for _, p := range e.Publishers {
		inv := Inventory{
			Publisher:   p.ID,
			DailyVH:     p.DailyViewHoursAt(t),
			Protocols:   p.ProtocolsAt(t),
			CDNs:        p.CDNNamesAt(t),
			Platforms:   p.PlatformsAt(t),
			CatalogSize: p.CatalogSize,
		}
		seen := map[string]bool{}
		for _, pl := range inv.Platforms {
			names, _ := deviceMixAt(pl, f)
			for _, name := range names {
				model, ok := device.ByName(name)
				if !ok {
					continue
				}
				// A device is reachable only if some supported
				// protocol plays on it.
				playable := false
				for _, proto := range inv.Protocols {
					if model.Supports(proto) {
						playable = true
						break
					}
				}
				if !playable {
					continue
				}
				inv.DeviceModels = append(inv.DeviceModels, name)
				for _, v := range model.VersionsInUse(t, p.SDKLag) {
					key := v.String()
					if !seen[key] {
						seen[key] = true
						inv.SDKVersions = append(inv.SDKVersions, key)
					}
				}
			}
		}
		out = append(out, inv)
	}
	return out
}

// Validate sanity-checks the generated population; it returns an error
// describing the first structural violation found. Tests and the
// generator CLI call this before trusting a population.
func (e *Ecosystem) Validate() error {
	if len(e.Publishers) == 0 {
		return fmt.Errorf("ecosystem: empty population")
	}
	latest := e.Schedule.Latest()
	for _, p := range e.Publishers {
		if p.DailyVH <= 0 {
			return fmt.Errorf("ecosystem: %s has non-positive view-hours", p.ID)
		}
		if len(p.ProtocolsAt(latest.Start)) == 0 {
			return fmt.Errorf("ecosystem: %s supports no protocol at the latest snapshot", p.ID)
		}
		if len(p.PlatformsAt(latest.Start)) == 0 {
			return fmt.Errorf("ecosystem: %s supports no platform at the latest snapshot", p.ID)
		}
		if len(p.CDNsAt(latest.Start)) == 0 {
			return fmt.Errorf("ecosystem: %s has no active CDN at the latest snapshot", p.ID)
		}
		for _, name := range p.cdnNames {
			if _, ok := e.CDNs.ByName(name); !ok {
				return fmt.Errorf("ecosystem: %s assigned unknown CDN %q", p.ID, name)
			}
		}
		if p.IsSyndicator && len(p.SyndicatesTo) > 0 {
			return fmt.Errorf("ecosystem: %s is both owner and full syndicator", p.ID)
		}
	}
	return nil
}
