package ecosystem

import (
	"fmt"
	"math"

	"vmp/internal/cdnsim"
	"vmp/internal/device"
	"vmp/internal/dist"
)

// bucketCounts is the publisher count per view-hour decade: ~110
// publishers with over 35% in the 100X-1000X bucket (Fig 3b) and a
// handful of giants at the top.
var bucketCounts = [NumBuckets]int{9, 15, 22, 40, 17, 6, 3}

// DefaultPublisherCount is the size of the default population.
func DefaultPublisherCount() int {
	n := 0
	for _, c := range bucketCounts {
		n += c
	}
	return n
}

// FullSyndicatorCount is the number of full syndicators in the
// population; Fig 14 measures owners against this denominator.
const FullSyndicatorCount = 24

// buildPopulation creates the publisher population from the root
// source. The construction is deterministic in the seed.
func buildPopulation(root *dist.Source) []*Publisher {
	var pubs []*Publisher
	idx := 0
	for b := 0; b < NumBuckets; b++ {
		for k := 0; k < bucketCounts[b]; k++ {
			src := root.Splitf("publisher", idx)
			p := buildPublisher(src, idx, Bucket(b))
			pubs = append(pubs, p)
			idx++
		}
	}
	assignCDNs(root, pubs)
	buildSyndication(root.Split("syndication"), pubs)
	return pubs
}

// buildPublisher fills in everything about one publisher except its CDN
// assignment and syndication links, which need population-wide context.
func buildPublisher(src *dist.Source, idx int, b Bucket) *Publisher {
	p := &Publisher{
		ID:     fmt.Sprintf("pub%03d", idx),
		Bucket: b,
	}
	// Daily view-hours: decade b spans [10^(b-1), 10^b) X-units, with
	// the giants' exponent damped so the top three don't swamp the
	// population beyond what the paper's exclusion figures imply.
	u := src.Split("vh").Float64()
	if b == NumBuckets-1 {
		p.DailyVH = math.Pow(10, 5+0.25*u)
	} else {
		p.DailyVH = math.Pow(10, float64(b)-1+u)
	}
	p.Growth = src.Split("growth").Uniform(-0.15, 0.35)

	buildProtocols(src.Split("protocols"), p)
	buildPlatforms(src.Split("platforms"), p)

	// Content shape. Catalogue size grows sub-linearly with view-hours
	// (titles ∝ VH^0.5), which combined with protocol growth produces
	// Fig 13b's per-decade factor.
	p.CatalogSize = int(24 * math.Pow(p.DailyVH, 0.5))
	if p.CatalogSize < 8 {
		p.CatalogSize = 8
	}
	p.MeanVideoHours = src.Split("videolen").Uniform(0.35, 1.2)
	if src.Split("liveheavy").Bool(0.25) {
		p.LiveShare = src.Split("liveshare").Uniform(0.30, 0.70)
	} else {
		p.LiveShare = src.Split("liveshare").Uniform(0, 0.12)
	}
	// RTMP lingers at the start of the window for live-leaning,
	// Flash-era publishers (§4.1: 1.6% of view-hours in January 2016,
	// fading to 0.1% by March 2018).
	if p.LiveShare > 0.2 && src.Split("rtmp").Bool(0.6) {
		p.rtmpWeight0 = 0.95
	}
	p.DRM = src.Split("drm").Bool(0.4)
	// Legacy-SDK support deepens with publisher size: the giants keep
	// up to 85 device-SDK-version code bases alive (§5).
	p.SDKLag = 1 + int(float64(b)*0.8)
	return p
}

// buildProtocols draws the publisher's protocol support trajectory.
// Targets (measured across publishers, latest snapshot): HLS ≈91%,
// DASH 10%→43%, Smooth ≈40% flat, HDS ≈35%→19%.
func buildProtocols(src *dist.Source, p *Publisher) {
	never := 2.0 // an adoption fraction that never arrives
	p.hlsFrom, p.dashFrom, p.smoothFrom, p.hdsFrom = never, never, never, never
	p.hdsUntil = never

	switch {
	case p.Bucket == NumBuckets-1:
		// Giants: HLS + DASH (+ Smooth for most), plus a legacy HDS
		// pipeline they retire mid-study. They are DASH drivers;
		// adoption lands early in the window so DASH view-hours ramp
		// as in Fig 2b (one driver is already converted at the start,
		// giving DASH its ~3% initial share).
		p.hlsFrom = 0
		p.DASHDriver = true
		p.dashFrom = src.Split("dash-t").Uniform(0, 0.35)
		if src.Split("dash-early").Bool(0.4) {
			p.dashFrom = 0
		}
		if src.Split("smooth").Bool(0.67) {
			p.smoothFrom = 0
		}
		p.hdsFrom = 0
		p.hdsUntil = src.Split("hds-t").Uniform(0.15, 0.45)
	case p.Bucket == NumBuckets-2:
		// 10^4X-10^5X: exactly two protocols by the latest snapshot,
		// HLS+DASH (Fig 3b's right-most displayed bucket is all
		// 2-protocol publishers); half of them are also DASH drivers,
		// and a legacy HDS pipeline retires early.
		p.hlsFrom = 0
		p.DASHDriver = src.Split("driver").Bool(0.5)
		p.dashFrom = src.Split("dash-t").Uniform(0, 0.5)
		p.hdsFrom = 0
		p.hdsUntil = src.Split("hds-t").Uniform(0.1, 0.4)
	default:
		if src.Split("hls").Bool(0.88) {
			p.hlsFrom = 0
		}
		// Protocol breadth is correlated within a publisher: some
		// organizations package for everything, most keep one or two
		// pipelines. The split reproduces both Fig 2a's per-protocol
		// support levels and Fig 3a's 1-protocol share.
		multi := src.Split("persona").Bool(0.50)
		pDash, pSmooth, pHDS := 0.12, 0.10, 0.18
		if multi {
			pDash, pSmooth, pHDS = 0.55, 0.65, 0.38
		}
		if src.Split("dash").Bool(pDash) {
			if src.Split("dash-early").Bool(0.25) {
				p.dashFrom = 0
			} else {
				p.dashFrom = src.Split("dash-t").Uniform(0, 1)
			}
		}
		if src.Split("smooth").Bool(pSmooth) {
			p.smoothFrom = 0
		}
		if src.Split("hds").Bool(pHDS) {
			p.hdsFrom = 0
			if src.Split("hds-drop").Bool(0.48) {
				p.hdsUntil = src.Split("hds-drop-t").Uniform(0.1, 1)
			}
		}
		// A publisher with nothing supports HLS after all; everyone
		// packages something. Likewise a publisher whose only pipeline
		// is HDS and who retires it migrates to HLS at the drop date.
		if p.hlsFrom >= never && p.dashFrom >= never && p.smoothFrom >= never {
			if p.hdsFrom >= never {
				p.hlsFrom = 0
			} else if p.hdsUntil <= 1 {
				p.hlsFrom = p.hdsUntil
			}
		}
	}
}

// buildPlatforms draws platform adoption dates. Targets across
// publishers: browser ~98% flat, mobile 80%→95%, set-top 18%→55%,
// smart TV 17%→62%, console ~22%→30% (Fig 7); the giants support all
// five throughout, which concentrates all-five support among the
// publishers carrying most view-hours (Fig 9a).
func buildPlatforms(src *dist.Source, p *Publisher) {
	const never = 2.0
	for i := range p.platformFrom {
		p.platformFrom[i] = never
	}
	set := func(pl device.Platform, f float64) { p.platformFrom[int(pl)] = f }

	if p.Bucket >= NumBuckets-1 {
		// The giants ship everywhere throughout the window.
		for _, pl := range device.Platforms {
			set(pl, 0)
		}
		return
	}
	if p.Bucket >= 4 {
		// Large publishers: browser and mobile always; living-room
		// apps arrive early-to-mid study for those that lack them.
		set(device.Browser, 0)
		set(device.Mobile, 0)
		if src.Split("settop").Bool(0.5) {
			set(device.SetTop, 0)
		} else {
			set(device.SetTop, src.Split("settop-t").Uniform(0, 0.6))
		}
		if src.Split("smarttv").Bool(0.35) {
			set(device.SmartTV, 0)
		} else {
			set(device.SmartTV, src.Split("smarttv-t").Uniform(0, 0.8))
		}
		if src.Split("console").Bool(0.6) {
			set(device.Console, 0)
		} else if src.Split("console-late").Bool(0.5) {
			set(device.Console, src.Split("console-t").Uniform(0, 1))
		}
		return
	}
	if src.Split("browser").Bool(0.98) {
		set(device.Browser, 0)
	}
	switch {
	case src.Split("mobile").Bool(0.78):
		set(device.Mobile, 0)
	case src.Split("mobile-late").Bool(0.85):
		set(device.Mobile, src.Split("mobile-t").Uniform(0, 1))
	}
	// Larger publishers adopt the living room sooner and more often.
	sizeBoost := float64(p.Bucket) * 0.05
	switch {
	case src.Split("settop").Bool(0.08 + sizeBoost):
		set(device.SetTop, 0)
	case src.Split("settop-late").Bool(0.38 + sizeBoost):
		set(device.SetTop, src.Split("settop-t").Uniform(0, 1))
	}
	switch {
	case src.Split("smarttv").Bool(0.10 + sizeBoost):
		set(device.SmartTV, 0)
	case src.Split("smarttv-late").Bool(0.40 + sizeBoost):
		set(device.SmartTV, src.Split("smarttv-t").Uniform(0, 1))
	}
	switch {
	case src.Split("console").Bool(0.15):
		set(device.Console, 0)
	case src.Split("console-late").Bool(0.12):
		set(device.Console, src.Split("console-t").Uniform(0, 1))
	}
	// A publisher that ended up with nothing gets a browser player:
	// every publisher reaches users somehow.
	any := false
	for _, f := range p.platformFrom {
		if f <= 1 {
			any = true
			break
		}
	}
	if !any {
		set(device.Browser, 0)
	}
}

// cdnCountFor draws the publisher's eventual CDN count by bucket,
// following Fig 12b: all sub-X publishers single-CDN; the 10^4-10^5
// bucket spans 1-5; everything above 10^5 uses at least 4.
func cdnCountFor(src *dist.Source, b Bucket) int {
	switch b {
	case 0:
		return 1
	case 1, 2:
		if src.Bool(0.35) {
			return 2
		}
		return 1
	case 3:
		return 1 + src.Intn(3) // 1-3
	case 4:
		return 2 + src.Intn(4) // 2-5
	case 5:
		// Mostly 4-5 with a couple of outliers spanning the 1-5 range.
		switch src.Intn(6) {
		case 0:
			return 1
		case 1:
			return 3
		case 2, 3:
			return 4
		default:
			return 5
		}
	default:
		if src.Bool(0.33) {
			return 4
		}
		return 5
	}
}

// assignCDNs gives every publisher its CDN set, adoption dates, and
// live/VoD segregation flags. It needs the whole population to
// round-robin minor CDNs so all 36 appear in the dataset.
func assignCDNs(root *dist.Source, pubs []*Publisher) {
	minorPool := minorCDNNames()
	minorNext := 0
	drawMinor := func() string {
		name := minorPool[minorNext%len(minorPool)]
		minorNext++
		return name
	}
	for i, p := range pubs {
		src := root.Splitf("cdn-assign", i)
		n := cdnCountFor(src.Split("count"), p.Bucket)
		// First CDN: A for ~80% of publishers (Fig 11a), otherwise one
		// of the other majors or a regional.
		var names []string
		if src.Split("first").Bool(0.80) {
			names = append(names, "A")
		} else {
			names = append(names, []string{"B", "C", "D", "E", drawMinor()}[src.Split("first-alt").Intn(5)])
		}
		// Subsequent CDNs: C is the most common second choice, then B,
		// with regionals appearing mostly among mid-size publishers.
		candidates := []string{"C", "B", "D", "E"}
		weights := []float64{0.34, 0.30, 0.14, 0.12}
		for len(names) < n {
			var pick string
			if (p.Bucket == 3 || p.Bucket == 4) && src.Split("minor").Bool(0.30) {
				pick = drawMinor()
			} else {
				pick = candidates[src.Splitf("next", len(names)).Categorical(weights)]
			}
			if contains(names, pick) {
				// Fall through the majors in order to keep the draw
				// terminating.
				for _, alt := range []string{"C", "B", "D", "E", "A"} {
					if !contains(names, alt) {
						pick = alt
						break
					}
				}
				if contains(names, pick) {
					pick = drawMinor()
					if contains(names, pick) {
						continue
					}
				}
			}
			names = append(names, pick)
		}
		p.cdnNames = names
		p.cdnFrom = make([]float64, len(names))
		p.cdnLiveOnly = make([]bool, len(names))
		p.cdnVoDOnly = make([]bool, len(names))
		// The first CDNs are in place at the window start; later ones
		// arrive during the study, which is what makes the
		// view-hour-weighted average CDN count grow faster than the
		// plain average (Fig 12c). Large publishers begin multi-CDN.
		inPlace := 2
		if p.Bucket >= 5 {
			inPlace = 3
		}
		for j := range names {
			if j < inPlace {
				p.cdnFrom[j] = 0
			} else {
				p.cdnFrom[j] = src.Splitf("cdn-t", j).Uniform(0, 0.8)
			}
		}
		p.shiftToBC = p.Bucket >= 5
		// Live/VoD segregation (§4.3): among multi-CDN publishers
		// serving both kinds of content, 30% keep a CDN VoD-only and
		// 19% keep one live-only.
		if n >= 2 && p.LiveShare > 0.05 && p.LiveShare < 0.95 {
			if src.Split("vod-only").Bool(0.30) {
				p.cdnVoDOnly[n-1] = true
			}
			if src.Split("live-only").Bool(0.19) {
				// Segregate a different CDN than the VoD-only one.
				j := n - 1
				if p.cdnVoDOnly[j] {
					j--
				}
				p.cdnLiveOnly[j] = true
			}
		}
	}
	// The extreme case §4.3 describes: one publisher serving all VoD
	// from one CDN and all live from another.
	for _, p := range pubs {
		if len(p.cdnNames) == 2 && p.LiveShare > 0.3 && p.LiveShare < 0.7 {
			p.cdnVoDOnly[0], p.cdnLiveOnly[0] = true, false
			p.cdnLiveOnly[1], p.cdnVoDOnly[1] = true, false
			break
		}
	}
}

// minorCDNNames returns the names of the 31 regional/internal CDNs in
// the cdnsim registry.
func minorCDNNames() []string {
	var names []string
	for i := len(cdnsim.TopCDNNames); i < cdnsim.TotalCDNCount; i++ {
		names = append(names, fmt.Sprintf("R%02d", i))
	}
	return names
}

// buildSyndication designates full syndicators and wires the
// owner→syndicator graph of §6. Fig 14's anchors: >80% of owners use at
// least one syndicator, and the top 20% of owners reach about a third
// of all full syndicators.
func buildSyndication(src *dist.Source, pubs []*Publisher) {
	// Full syndicators are mid-size publishers (buckets 2-4).
	var syndicators []*Publisher
	for _, p := range pubs {
		if len(syndicators) < FullSyndicatorCount && p.Bucket >= 2 && p.Bucket <= 4 {
			p.IsSyndicator = true
			p.SyndShare = src.Split("share-"+p.ID).Uniform(0.20, 0.50)
			syndicators = append(syndicators, p)
		}
	}
	for i, p := range pubs {
		if p.IsSyndicator {
			continue // syndicators are not owners in this model
		}
		osrc := src.Splitf("owner", i)
		k := syndicatorCountFor(osrc.Split("k").Float64())
		if k > len(syndicators) {
			k = len(syndicators)
		}
		perm := osrc.Split("perm").Perm(len(syndicators))
		for _, j := range perm[:k] {
			s := syndicators[j]
			p.SyndicatesTo = append(p.SyndicatesTo, s.ID)
			s.CarriesFrom = append(s.CarriesFrom, p.ID)
		}
	}
}

// syndicatorCountFor maps a uniform draw to the number of full
// syndicators an owner uses: 20% use none, the top quintile reaches 8
// of the 24 (≈ one third).
func syndicatorCountFor(u float64) int {
	switch {
	case u < 0.20:
		return 0
	case u < 0.45:
		return 1
	case u < 0.62:
		return 2
	case u < 0.72:
		return 3
	case u < 0.78:
		return 4
	case u < 0.80:
		return 6
	case u < 0.92:
		return 8
	default:
		return 9
	}
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
