package ecosystem

import (
	"testing"

	"vmp/internal/device"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// testEco builds a small-stride ecosystem once per test binary.
var testEcoCache *Ecosystem

func testEco(t *testing.T) *Ecosystem {
	t.Helper()
	if testEcoCache == nil {
		testEcoCache = New(Config{SnapshotStride: 8})
		if err := testEcoCache.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return testEcoCache
}

func TestPopulationShape(t *testing.T) {
	e := testEco(t)
	if len(e.Publishers) != DefaultPublisherCount() {
		t.Fatalf("population = %d, want %d", len(e.Publishers), DefaultPublisherCount())
	}
	if len(e.Publishers) < 100 {
		t.Fatal("the paper studies more than one hundred publishers")
	}
	counts := map[Bucket]int{}
	ids := map[string]bool{}
	for _, p := range e.Publishers {
		counts[p.Bucket]++
		if ids[p.ID] {
			t.Fatalf("duplicate publisher ID %s", p.ID)
		}
		ids[p.ID] = true
	}
	for b := Bucket(0); b < NumBuckets; b++ {
		if counts[b] != bucketCounts[b] {
			t.Errorf("bucket %d has %d publishers, want %d", b, counts[b], bucketCounts[b])
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := New(Config{SnapshotStride: 20})
	b := New(Config{SnapshotStride: 20})
	ra := a.GenerateSnapshot(a.Schedule.Latest())
	rb := b.GenerateSnapshot(b.Schedule.Latest())
	if len(ra) != len(rb) {
		t.Fatalf("runs differ in record count: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].URL != rb[i].URL || ra[i].ViewSec != rb[i].ViewSec || ra[i].Device != rb[i].Device {
			t.Fatalf("record %d differs between identical runs", i)
		}
	}
	c := New(Config{Seed: 99, SnapshotStride: 20})
	rc := c.GenerateSnapshot(c.Schedule.Latest())
	same := len(rc) == len(ra)
	if same {
		diff := false
		for i := range ra {
			if ra[i].URL != rc[i].URL {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestStrideKeepsLatestSnapshot(t *testing.T) {
	full := simclock.DefaultSchedule()
	e := New(Config{SnapshotStride: 10})
	if e.Schedule.Latest().Index != full.Latest().Index {
		t.Fatal("stride dropped the latest snapshot")
	}
}

// latestRecords generates the latest snapshot once for the anchor tests.
var latestCache []telemetry.ViewRecord

func latestRecords(t *testing.T) []telemetry.ViewRecord {
	t.Helper()
	if latestCache == nil {
		e := testEco(t)
		latestCache = e.GenerateSnapshot(e.Schedule.Latest())
	}
	return latestCache
}

func firstRecords(t *testing.T) []telemetry.ViewRecord {
	t.Helper()
	e := testEco(t)
	return e.GenerateSnapshot(e.Schedule[0])
}

// shareBy sums view-hour shares keyed by an extractor.
func shareBy(recs []telemetry.ViewRecord, key func(*telemetry.ViewRecord) string) map[string]float64 {
	total := 0.0
	m := map[string]float64{}
	for i := range recs {
		vh := recs[i].ViewHours()
		total += vh
		m[key(&recs[i])] += vh
	}
	for k := range m {
		m[k] /= total
	}
	return m
}

func protoOf(r *telemetry.ViewRecord) string { return manifest.InferProtocol(r.URL).String() }

func platformOf(r *telemetry.ViewRecord) string {
	m, _ := device.ByName(r.Device)
	return m.Platform.String()
}

// TestAnchorProtocolViewHours checks Fig 2b's endpoints: DASH grows
// from a few percent to 38-45% of view-hours while HLS stays dominant
// and HDS collapses.
func TestAnchorProtocolViewHours(t *testing.T) {
	first := shareBy(firstRecords(t), protoOf)
	latest := shareBy(latestRecords(t), protoOf)
	if d := first["DASH"]; d > 0.10 {
		t.Errorf("DASH share at start = %.2f, want small (~3%%)", d)
	}
	if d := latest["DASH"]; d < 0.33 || d > 0.50 {
		t.Errorf("DASH share latest = %.2f, want 0.38±", d)
	}
	if h := latest["HLS"]; h < 0.38 || h > 0.62 {
		t.Errorf("HLS share latest = %.2f, want dominant alongside DASH", h)
	}
	if hds := latest["HDS"]; hds > 0.05 {
		t.Errorf("HDS share latest = %.2f, want near zero", hds)
	}
	if first["HDS"] < latest["HDS"] {
		t.Error("HDS must decline over the study")
	}
	// RTMP: 1.6% -> 0.1% of view-hours (§4.1).
	if r := first["RTMP"]; r < 0.002 || r > 0.04 {
		t.Errorf("RTMP share at start = %.3f, want ~0.016", r)
	}
	if r := latest["RTMP"]; r > 0.005 {
		t.Errorf("RTMP share latest = %.3f, want ~0.001", r)
	}
}

// TestAnchorDASHDrivenByGiants checks Fig 2c: excluding the DASH
// drivers, DASH accounts for under ~8% of view-hours.
func TestAnchorDASHDrivenByGiants(t *testing.T) {
	e := testEco(t)
	drivers := map[string]bool{}
	for _, p := range e.Publishers {
		if p.DASHDriver {
			drivers[p.ID] = true
		}
	}
	if len(drivers) < 2 || len(drivers) > 8 {
		t.Fatalf("N = %d DASH drivers, want a small handful", len(drivers))
	}
	var rest []telemetry.ViewRecord
	for _, r := range latestRecords(t) {
		if !drivers[r.Publisher] {
			rest = append(rest, r)
		}
	}
	share := shareBy(rest, protoOf)
	if d := share["DASH"]; d > 0.10 {
		t.Errorf("DASH share excluding drivers = %.2f, want < 0.10", d)
	}
}

// TestAnchorPlatformViewHours checks Fig 6a's endpoints.
func TestAnchorPlatformViewHours(t *testing.T) {
	first := shareBy(firstRecords(t), platformOf)
	latest := shareBy(latestRecords(t), platformOf)
	if b := first["Browser"]; b < 0.50 || b > 0.72 {
		t.Errorf("browser share at start = %.2f, want ~0.60", b)
	}
	if b := latest["Browser"]; b > 0.30 {
		t.Errorf("browser share latest = %.2f, want < 0.25-0.30", b)
	}
	if s := latest["SetTop"]; s < 0.33 || s > 0.55 {
		t.Errorf("set-top share latest = %.2f, want ~0.40", s)
	}
	if m := latest["Mobile"]; m < 0.14 || m > 0.30 {
		t.Errorf("mobile share latest = %.2f, want 0.20-0.25", m)
	}
	if tv := latest["SmartTV"]; tv > 0.07 {
		t.Errorf("smart-TV share latest = %.2f, want < 0.05", tv)
	}
	if first["SetTop"] > latest["SetTop"] {
		t.Error("set-top view-hours must grow")
	}
}

// TestAnchorSetTopViewsVsViewHours checks the Fig 6a/6c contrast: the
// set-top's view share lags far behind its view-hour share because
// set-top views run long.
func TestAnchorSetTopViewsVsViewHours(t *testing.T) {
	recs := latestRecords(t)
	totalViews, settopViews := 0.0, 0.0
	for i := range recs {
		v := recs[i].Views()
		totalViews += v
		if platformOf(&recs[i]) == "SetTop" {
			settopViews += v
		}
	}
	viewShare := settopViews / totalViews
	vhShare := shareBy(recs, platformOf)["SetTop"]
	if viewShare > 0.30 {
		t.Errorf("set-top view share = %.2f, want ~0.20", viewShare)
	}
	if vhShare < viewShare*1.4 {
		t.Errorf("set-top VH share %.2f should far exceed view share %.2f", vhShare, viewShare)
	}
}

// TestAnchorViewDurations checks Fig 8: ~24% of mobile/browser views
// exceed 0.2 hours versus >60% of set-top views.
func TestAnchorViewDurations(t *testing.T) {
	recs := latestRecords(t)
	over, count := map[string]float64{}, map[string]float64{}
	for i := range recs {
		pl := platformOf(&recs[i])
		count[pl]++
		if recs[i].ViewSec > 0.2*3600 {
			over[pl]++
		}
	}
	mob := over["Mobile"] / count["Mobile"]
	brw := over["Browser"] / count["Browser"]
	set := over["SetTop"] / count["SetTop"]
	if mob < 0.12 || mob > 0.32 {
		t.Errorf("mobile views > 0.2h = %.2f, want ~0.24", mob)
	}
	if brw < 0.12 || brw > 0.34 {
		t.Errorf("browser views > 0.2h = %.2f, want ~0.24", brw)
	}
	if set < 0.60 {
		t.Errorf("set-top views > 0.2h = %.2f, want > 0.60", set)
	}
}

// TestAnchorCDNShares checks Fig 11: A dominant early; A, B, C each
// carrying 20-35% of view-hours at the end with D and E small.
func TestAnchorCDNShares(t *testing.T) {
	cdnOf := func(r *telemetry.ViewRecord) string { return r.CDNs[0] }
	first := shareBy(firstRecords(t), cdnOf)
	latest := shareBy(latestRecords(t), cdnOf)
	if a := first["A"]; a < 0.5 {
		t.Errorf("CDN A share at start = %.2f, want dominant", a)
	}
	for _, name := range []string{"A", "B", "C"} {
		if s := latest[name]; s < 0.20 || s > 0.40 {
			t.Errorf("CDN %s share latest = %.2f, want 0.20-0.35", name, s)
		}
	}
	for _, name := range []string{"D", "E"} {
		if s := latest[name]; s > 0.10 {
			t.Errorf("CDN %s share latest = %.2f, want ≤ ~0.05", name, s)
		}
	}
}

// TestAnchorCDNCounts checks Fig 12a/12b's extremes.
func TestAnchorCDNCounts(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	recs := latestRecords(t)
	pubVH := map[string]float64{}
	total := 0.0
	for i := range recs {
		vh := recs[i].ViewHours()
		pubVH[recs[i].Publisher] += vh
		total += vh
	}
	countPubs := map[int]int{}
	countVH := map[int]float64{}
	for _, p := range e.Publishers {
		n := len(p.CDNsAt(latest))
		countPubs[n]++
		countVH[n] += pubVH[p.ID]
		switch {
		case p.Bucket == 0 && n != 1:
			t.Errorf("%s (bucket 0) uses %d CDNs, want 1", p.ID, n)
		case p.Bucket == NumBuckets-1 && n < 4:
			t.Errorf("%s (giant) uses %d CDNs, want ≥ 4", p.ID, n)
		}
	}
	nPubs := len(e.Publishers)
	if frac := float64(countPubs[1]) / float64(nPubs); frac < 0.40 {
		t.Errorf("single-CDN publishers = %.2f of population, want > 0.40", frac)
	}
	if share := countVH[1] / total; share > 0.05 {
		t.Errorf("single-CDN publishers carry %.2f of VH, want < 0.05", share)
	}
	if frac := float64(countPubs[5]) / float64(nPubs); frac > 0.10 {
		t.Errorf("five-CDN publishers = %.2f of population, want < 0.10", frac)
	}
	if share := countVH[5] / total; share < 0.50 {
		t.Errorf("five-CDN publishers carry %.2f of VH, want > 0.50", share)
	}
	if share := (countVH[4] + countVH[5]) / total; share < 0.70 {
		t.Errorf("4-5 CDN publishers carry %.2f of VH, want ~0.80", share)
	}
}

// TestAnchorMultiEverything checks the §4.4 summary: more than 90% of
// view-hours come from publishers supporting >1 protocol, >1 CDN, and
// >1 platform.
func TestAnchorMultiEverything(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	recs := latestRecords(t)
	pubVH := map[string]float64{}
	total := 0.0
	for i := range recs {
		vh := recs[i].ViewHours()
		pubVH[recs[i].Publisher] += vh
		total += vh
	}
	var multiProto, multiCDN, multiPlat float64
	for _, p := range e.Publishers {
		if len(p.ProtocolsAt(latest)) > 1 {
			multiProto += pubVH[p.ID]
		}
		if len(p.CDNsAt(latest)) > 1 {
			multiCDN += pubVH[p.ID]
		}
		if len(p.PlatformsAt(latest)) > 1 {
			multiPlat += pubVH[p.ID]
		}
	}
	for name, share := range map[string]float64{
		"protocol": multiProto / total,
		"CDN":      multiCDN / total,
		"platform": multiPlat / total,
	} {
		if share < 0.90 {
			t.Errorf("multi-%s publishers carry %.2f of VH, want > 0.90", name, share)
		}
	}
}

// TestAnchorProtocolSupport checks Fig 2a's endpoints across
// publishers.
func TestAnchorProtocolSupport(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	start := simclock.StudyStart
	frac := func(proto manifest.Protocol, at ...bool) (s, l float64) {
		var cs, cl int
		for _, p := range e.Publishers {
			if p.SupportsProtocolAt(proto, start) {
				cs++
			}
			if p.SupportsProtocolAt(proto, latest) {
				cl++
			}
		}
		n := float64(len(e.Publishers))
		return float64(cs) / n, float64(cl) / n
	}
	if _, hls := frac(manifest.HLS); hls < 0.85 || hls > 0.98 {
		t.Errorf("HLS support latest = %.2f, want ~0.91", hls)
	}
	dashS, dashL := frac(manifest.DASH)
	if dashS < 0.05 || dashS > 0.18 {
		t.Errorf("DASH support at start = %.2f, want ~0.10", dashS)
	}
	if dashL < 0.33 || dashL > 0.52 {
		t.Errorf("DASH support latest = %.2f, want ~0.43", dashL)
	}
	_, smooth := frac(manifest.Smooth)
	if smooth < 0.30 || smooth > 0.50 {
		t.Errorf("Smooth support latest = %.2f, want ~0.40", smooth)
	}
	hdsS, hdsL := frac(manifest.HDS)
	if hdsL > hdsS {
		t.Error("HDS support must decline")
	}
	if hdsL < 0.10 || hdsL > 0.28 {
		t.Errorf("HDS support latest = %.2f, want ~0.19", hdsL)
	}
}

// TestAnchorSegregation checks §4.3's live/VoD CDN segregation shares.
func TestAnchorSegregation(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	var eligible, vodOnly, liveOnly, extreme int
	for _, p := range e.Publishers {
		as := p.CDNsAt(latest)
		if len(as) < 2 || p.LiveShare <= 0.05 || p.LiveShare >= 0.95 {
			continue
		}
		eligible++
		hasVoD, hasLive := false, false
		segregated := 0
		for _, a := range as {
			if a.VoDOnly {
				hasVoD = true
				segregated++
			}
			if a.LiveOnly {
				hasLive = true
				segregated++
			}
		}
		if hasVoD {
			vodOnly++
		}
		if hasLive {
			liveOnly++
		}
		if segregated == len(as) && len(as) >= 2 {
			extreme++
		}
	}
	if eligible == 0 {
		t.Fatal("no publishers eligible for segregation analysis")
	}
	fv := float64(vodOnly) / float64(eligible)
	fl := float64(liveOnly) / float64(eligible)
	if fv < 0.18 || fv > 0.45 {
		t.Errorf("VoD-only segregation = %.2f of eligible, want ~0.30", fv)
	}
	if fl < 0.08 || fl > 0.32 {
		t.Errorf("live-only segregation = %.2f of eligible, want ~0.19", fl)
	}
	if extreme < 1 {
		t.Error("the extreme fully-segregated publisher is missing")
	}
}

// TestAnchorSyndicationGraph checks Fig 14: >80% of owners use at least
// one syndicator and the top quintile reaches about a third of them.
func TestAnchorSyndicationGraph(t *testing.T) {
	e := testEco(t)
	var owners, withSynd, third int
	for _, p := range e.Publishers {
		if p.IsSyndicator {
			if len(p.CarriesFrom) == 0 {
				t.Errorf("syndicator %s carries nothing", p.ID)
			}
			continue
		}
		owners++
		if len(p.SyndicatesTo) > 0 {
			withSynd++
		}
		if float64(len(p.SyndicatesTo)) >= float64(FullSyndicatorCount)/3 {
			third++
		}
	}
	if owners == 0 {
		t.Fatal("no owners")
	}
	if f := float64(withSynd) / float64(owners); f < 0.75 {
		t.Errorf("owners with ≥1 syndicator = %.2f, want > 0.80", f)
	}
	f := float64(third) / float64(owners)
	if f < 0.12 || f > 0.30 {
		t.Errorf("owners reaching 1/3 of syndicators = %.2f, want ~0.20", f)
	}
}

func TestRecordsAreWellFormed(t *testing.T) {
	e := testEco(t)
	snap := e.Schedule.Latest()
	for _, r := range latestRecords(t) {
		if r.Publisher == "" || r.VideoID == "" || r.URL == "" {
			t.Fatalf("incomplete record %+v", r)
		}
		if !snap.Contains(r.Timestamp) {
			t.Fatalf("record timestamp %v outside snapshot %v", r.Timestamp, snap.Label())
		}
		if r.ViewSec <= 0 || r.Weight <= 0 {
			t.Fatalf("degenerate record: viewsec=%v weight=%v", r.ViewSec, r.Weight)
		}
		if len(r.CDNs) == 0 || len(r.Bitrates) == 0 {
			t.Fatalf("record missing CDN or ladder: %+v", r)
		}
		p := manifest.InferProtocol(r.URL)
		if p == manifest.Unknown {
			t.Fatalf("record URL %q infers no protocol", r.URL)
		}
		m, ok := device.ByName(r.Device)
		if !ok {
			t.Fatalf("record uses unknown device %q", r.Device)
		}
		if !m.Supports(p) {
			t.Fatalf("%s cannot play %v (url %s)", r.Device, p, r.URL)
		}
		if m.Platform == device.Browser {
			if r.UserAgent == "" || r.SDK != "" {
				t.Fatalf("browser record must carry a user agent, not an SDK: %+v", r)
			}
		} else if r.SDK == "" || r.SDKVersion == "" {
			t.Fatalf("app record must carry SDK and version: %+v", r)
		}
		if r.Syndicated && (r.Owner == "" || r.ContentID == r.VideoID) {
			t.Fatalf("syndicated record missing owner identity: %+v", r)
		}
	}
}

func TestRecordsRespectPublisherConfig(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	for _, r := range latestRecords(t) {
		p, ok := e.PublisherByID(r.Publisher)
		if !ok {
			t.Fatalf("record from unknown publisher %s", r.Publisher)
		}
		proto := manifest.InferProtocol(r.URL)
		if proto != manifest.RTMP && !p.SupportsProtocolAt(proto, latest) {
			t.Fatalf("%s does not package %v at the latest snapshot", p.ID, proto)
		}
		names := p.CDNNamesAt(latest)
		for _, c := range r.CDNs {
			if !contains(names, c) {
				t.Fatalf("%s view served by unassigned CDN %s", p.ID, c)
			}
		}
	}
}

func TestAllCDNsObserved(t *testing.T) {
	e := testEco(t)
	used := map[string]bool{}
	for _, p := range e.Publishers {
		for _, name := range p.cdnNames {
			used[name] = true
		}
	}
	// §4.3: 36 CDNs observed across the dataset. Allow a little slack
	// for round-robin wrap.
	if len(used) < 30 {
		t.Fatalf("only %d distinct CDNs assigned, want ~36", len(used))
	}
}

func TestInventoryAt(t *testing.T) {
	e := testEco(t)
	latest := e.Schedule.Latest().Start
	invs := e.InventoryAt(latest)
	if len(invs) != len(e.Publishers) {
		t.Fatalf("inventories = %d, want %d", len(invs), len(e.Publishers))
	}
	maxSDKs := 0
	for _, inv := range invs {
		if inv.DailyVH <= 0 || inv.CatalogSize <= 0 {
			t.Fatalf("degenerate inventory %+v", inv)
		}
		if len(inv.Protocols) == 0 || len(inv.CDNs) == 0 || len(inv.DeviceModels) == 0 {
			t.Fatalf("empty inventory dimension for %s", inv.Publisher)
		}
		if len(inv.SDKVersions) > maxSDKs {
			maxSDKs = len(inv.SDKVersions)
		}
	}
	// §5: the biggest publishers maintain up to ~85 code bases.
	if maxSDKs < 40 || maxSDKs > 120 {
		t.Errorf("max unique SDKs = %d, want near 85", maxSDKs)
	}
}

func TestGenerateStoreStride(t *testing.T) {
	e := New(Config{SnapshotStride: 25})
	store := e.GenerateStore()
	if store.Len() == 0 {
		t.Fatal("empty store")
	}
	// Every scheduled snapshot should have records.
	for _, snap := range e.Schedule {
		if len(store.Window(snap)) == 0 {
			t.Fatalf("snapshot %s has no records", snap.Label())
		}
	}
}
