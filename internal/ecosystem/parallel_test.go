package ecosystem

import (
	"sort"
	"testing"
)

// TestParallelGenerationMatchesSerial verifies the determinism claim:
// parallel and serial generation produce the same record multiset.
func TestParallelGenerationMatchesSerial(t *testing.T) {
	serial := New(Config{SnapshotStride: 15, Parallelism: 1}).GenerateStore()
	parallel := New(Config{SnapshotStride: 15, Parallelism: 8}).GenerateStore()
	a, b := serial.All(), parallel.All()
	if len(a) != len(b) {
		t.Fatalf("record counts differ: %d vs %d", len(a), len(b))
	}
	ka := make([]string, len(a))
	kb := make([]string, len(b))
	for i := range a {
		ka[i] = a[i].Timestamp.String() + "|" + a[i].URL + "|" + a[i].Device
		kb[i] = b[i].Timestamp.String() + "|" + b[i].URL + "|" + b[i].Device
	}
	sort.Strings(ka)
	sort.Strings(kb)
	for i := range ka {
		if ka[i] != kb[i] {
			t.Fatalf("record %d differs:\n%s\n%s", i, ka[i], kb[i])
		}
	}
}
