package ecosystem

import (
	"testing"
	"time"

	"vmp/internal/device"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
)

func giantAndSmall(t *testing.T) (giant, small *Publisher) {
	t.Helper()
	e := testEco(t)
	for _, p := range e.Publishers {
		if p.Bucket == NumBuckets-1 && giant == nil {
			giant = p
		}
		if p.Bucket == 0 && small == nil {
			small = p
		}
	}
	if giant == nil || small == nil {
		t.Fatal("population missing extremes")
	}
	return giant, small
}

func TestDailyViewHoursGrowth(t *testing.T) {
	p := &Publisher{DailyVH: 1000, Growth: 0.2}
	start := p.DailyViewHoursAt(simclock.StudyStart)
	end := p.DailyViewHoursAt(simclock.StudyEnd)
	if end <= start {
		t.Fatalf("positive growth should raise view-hours: %v -> %v", start, end)
	}
	mid := p.DailyViewHoursAt(simclock.StudyStart.Add(simclock.StudyEnd.Sub(simclock.StudyStart) / 2))
	if mid < 995 || mid > 1005 {
		t.Fatalf("midpoint VH = %v, want the configured 1000", mid)
	}
}

func TestVideoIDFormat(t *testing.T) {
	p := &Publisher{ID: "pub007"}
	if got := p.VideoID(42); got != "pub007-v0042" {
		t.Fatalf("VideoID = %q", got)
	}
}

func TestGiantCDNWeightShiftsFromA(t *testing.T) {
	giant, _ := giantAndSmall(t)
	weightOf := func(t0 time.Time, name string) float64 {
		for _, a := range giant.CDNsAt(t0) {
			if a.Name == name {
				return a.Weight
			}
		}
		return 0
	}
	aStart := weightOf(simclock.StudyStart, "A")
	aEnd := weightOf(simclock.StudyEnd, "A")
	bStart := weightOf(simclock.StudyStart, "B")
	bEnd := weightOf(simclock.StudyEnd, "B")
	if aStart == 0 {
		t.Skip("this giant does not use CDN A")
	}
	if aEnd >= aStart {
		t.Fatalf("giant's CDN A weight should decline: %v -> %v", aStart, aEnd)
	}
	if bStart > 0 && bEnd <= bStart {
		t.Fatalf("giant's CDN B weight should grow: %v -> %v", bStart, bEnd)
	}
}

func TestProtocolWeightsDriverRamp(t *testing.T) {
	giant, small := giantAndSmall(t)
	if !giant.DASHDriver {
		t.Fatal("giants should be DASH drivers")
	}
	latest := simclock.StudyEnd
	wGiant := giant.protocolWeightAt(manifest.DASH, latest)
	if wGiant <= giant.protocolWeightAt(manifest.HLS, latest) {
		t.Fatalf("driver DASH weight %v should exceed HLS weight by the end", wGiant)
	}
	if small.SupportsProtocolAt(manifest.DASH, latest) {
		if w := small.protocolWeightAt(manifest.DASH, latest); w > 0.5 {
			t.Fatalf("non-driver DASH weight = %v, want small", w)
		}
	}
	// Unsupported protocols weigh zero.
	if w := small.protocolWeightAt(manifest.DASH, simclock.StudyStart.Add(-time.Hour)); small.dashFrom > 0 && w != 0 {
		t.Fatalf("pre-adoption weight = %v, want 0", w)
	}
}

func TestPlatformWeightsGiantVsSmall(t *testing.T) {
	giant, small := giantAndSmall(t)
	latest := simclock.StudyEnd
	gSetTop := giant.platformWeightAt(device.SetTop, latest)
	gMobile := giant.platformWeightAt(device.Mobile, latest)
	if gSetTop <= gMobile {
		t.Fatalf("giants are living-room-led: settop %v vs mobile %v", gSetTop, gMobile)
	}
	if small.SupportsPlatformAt(device.Mobile, latest) && small.SupportsPlatformAt(device.SetTop, latest) {
		sSetTop := small.platformWeightAt(device.SetTop, latest)
		sMobile := small.platformWeightAt(device.Mobile, latest)
		if sMobile <= sSetTop {
			t.Fatalf("small publishers are mobile-led: mobile %v vs settop %v", sMobile, sSetTop)
		}
	}
	// Unsupported platforms weigh zero.
	if w := small.platformWeightAt(device.Console, latest); !small.SupportsPlatformAt(device.Console, latest) && w != 0 {
		t.Fatalf("unsupported platform weight = %v", w)
	}
}

func TestProtocolSupportMonotoneExceptHDS(t *testing.T) {
	e := testEco(t)
	times := []time.Time{
		simclock.StudyStart,
		simclock.StudyStart.AddDate(0, 9, 0),
		simclock.StudyStart.AddDate(0, 18, 0),
		simclock.StudyEnd,
	}
	for _, p := range e.Publishers {
		prevDASH := false
		for _, tm := range times {
			cur := p.SupportsProtocolAt(manifest.DASH, tm)
			if prevDASH && !cur {
				t.Fatalf("%s un-adopted DASH", p.ID)
			}
			prevDASH = cur
		}
	}
}

func TestCDNNamesSorted(t *testing.T) {
	e := testEco(t)
	for _, p := range e.Publishers {
		names := p.CDNNamesAt(simclock.StudyEnd)
		for i := 1; i < len(names); i++ {
			if names[i] < names[i-1] {
				t.Fatalf("%s CDN names unsorted: %v", p.ID, names)
			}
		}
	}
}

func TestInventoryDeterminism(t *testing.T) {
	a := New(Config{SnapshotStride: 30})
	b := New(Config{SnapshotStride: 30})
	ia := a.InventoryAt(a.Schedule.Latest().Start)
	ib := b.InventoryAt(b.Schedule.Latest().Start)
	if len(ia) != len(ib) {
		t.Fatal("inventory sizes differ")
	}
	for i := range ia {
		if ia[i].Publisher != ib[i].Publisher ||
			len(ia[i].SDKVersions) != len(ib[i].SDKVersions) ||
			len(ia[i].DeviceModels) != len(ib[i].DeviceModels) {
			t.Fatalf("inventory %d differs between identical runs", i)
		}
	}
}
