package analytics

import (
	"math"
	"testing"

	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// approxEq compares floats with a relative tolerance: legacy code sums
// in map-iteration order, so order-dependent sums may differ in ulps.
func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale
}

func requireSeriesEqual(t *testing.T, name string, got, want *TimeSeries) {
	t.Helper()
	if len(got.Keys) != len(want.Keys) {
		t.Fatalf("%s: keys = %v, want %v", name, got.Keys, want.Keys)
	}
	for i, k := range want.Keys {
		if got.Keys[i] != k {
			t.Fatalf("%s: keys = %v, want %v", name, got.Keys, want.Keys)
		}
		g, w := got.Series[k], want.Series[k]
		if len(g) != len(w) {
			t.Fatalf("%s[%s]: %d snapshots, want %d", name, k, len(g), len(w))
		}
		for si := range w {
			if !approxEq(g[si], w[si]) {
				t.Errorf("%s[%s][%d] = %v, want %v", name, k, si, g[si], w[si])
			}
		}
	}
}

func TestAnalyzeDimMatchesLegacy(t *testing.T) {
	store, sched := twoSnapStore()
	ds := store.Freeze()
	cases := []struct {
		name string
		col  *telemetry.DimColumn
		dim  Dim
	}{
		{"protocol", ds.ProtocolCol(), ProtocolDim},
		{"platform", ds.PlatformCol(), PlatformDim},
		{"cdn", ds.CDNCol(), CDNDim},
	}
	for _, c := range cases {
		b := AnalyzeDim(ds, sched, c.col)
		requireSeriesEqual(t, c.name+"/publishers", b.Publishers, ShareOfPublishers(store, sched, c.dim))
		requireSeriesEqual(t, c.name+"/viewhours", b.ViewHours, ShareOfViewHours(store, sched, c.dim, nil))
		requireSeriesEqual(t, c.name+"/views", b.Views, ShareOfViews(store, sched, c.dim, nil))
		legacy := AverageInstances(store, sched, c.dim)
		if len(b.Averages.Snapshots) != len(legacy.Snapshots) {
			t.Fatalf("%s/averages: %d snapshots, want %d", c.name, len(b.Averages.Snapshots), len(legacy.Snapshots))
		}
		for i := range legacy.Snapshots {
			if b.Averages.Snapshots[i] != legacy.Snapshots[i] {
				t.Errorf("%s/averages label %d = %q, want %q", c.name, i, b.Averages.Snapshots[i], legacy.Snapshots[i])
			}
			if !approxEq(b.Averages.Mean[i], legacy.Mean[i]) {
				t.Errorf("%s/averages mean %d = %v, want %v", c.name, i, b.Averages.Mean[i], legacy.Mean[i])
			}
			if !approxEq(b.Averages.Weighted[i], legacy.Weighted[i]) {
				t.Errorf("%s/averages weighted %d = %v, want %v", c.name, i, b.Averages.Weighted[i], legacy.Weighted[i])
			}
		}
	}
}

func TestShareOfDatasetExclusion(t *testing.T) {
	store, sched := twoSnapStore()
	ds := store.Freeze()
	exclude := make([]bool, ds.NumPublishers())
	if id, ok := ds.PublisherIDOf("p2"); ok {
		exclude[id] = true
	} else {
		t.Fatal("p2 missing from dataset")
	}
	got := ShareOfViewHoursDataset(ds, sched, ds.ProtocolCol(), exclude)
	want := ShareOfViewHours(store, sched, ProtocolDim, map[string]bool{"p2": true})
	requireSeriesEqual(t, "excl-viewhours", got, want)

	gotV := ShareOfViewsDataset(ds, sched, ds.ProtocolCol(), exclude)
	wantV := ShareOfViews(store, sched, ProtocolDim, map[string]bool{"p2": true})
	requireSeriesEqual(t, "excl-views", gotV, wantV)
}

func TestInstancesDatasetMatchesLegacy(t *testing.T) {
	store, sched := twoSnapStore()
	ds := store.Freeze()
	for _, snap := range sched {
		recs := store.Window(snap)
		got := InstancesPerPublisherDataset(ds, snap, ds.CDNCol())
		want := InstancesPerPublisher(recs, CDNDim)
		if len(got.Counts) != len(want.Counts) {
			t.Fatalf("%s: counts %v, want %v", snap.Label(), got.Counts, want.Counts)
		}
		for i := range want.Counts {
			if got.Counts[i] != want.Counts[i] || !approxEq(got.PubPct[i], want.PubPct[i]) || !approxEq(got.VHPct[i], want.VHPct[i]) {
				t.Errorf("%s histogram row %d = (%d %v %v), want (%d %v %v)", snap.Label(), i,
					got.Counts[i], got.PubPct[i], got.VHPct[i], want.Counts[i], want.PubPct[i], want.VHPct[i])
			}
		}

		gotB := InstancesByBucketDataset(ds, snap, ds.CDNCol(), snap.Days, 7)
		wantB := InstancesByBucket(recs, CDNDim, snap.Days, 7)
		if len(gotB.Buckets) != len(wantB.Buckets) {
			t.Fatalf("%s: bucket count mismatch", snap.Label())
		}
		for b := range wantB.Buckets {
			if !approxEq(gotB.PubsInBucket[b], wantB.PubsInBucket[b]) {
				t.Errorf("%s PubsInBucket[%d] = %v, want %v", snap.Label(), b, gotB.PubsInBucket[b], wantB.PubsInBucket[b])
			}
			if len(gotB.Buckets[b]) != len(wantB.Buckets[b]) {
				t.Errorf("%s bucket %d cells = %v, want %v", snap.Label(), b, gotB.Buckets[b], wantB.Buckets[b])
				continue
			}
			for n, v := range wantB.Buckets[b] {
				if !approxEq(gotB.Buckets[b][n], v) {
					t.Errorf("%s bucket %d count %d = %v, want %v", snap.Label(), b, n, gotB.Buckets[b][n], v)
				}
			}
		}
	}
}

func TestTopPublisherMaskMatchesLegacy(t *testing.T) {
	store, sched := twoSnapStore()
	ds := store.Freeze()
	for _, snap := range sched {
		for n := 0; n <= 3; n++ {
			want := TopPublishersByViewHours(store.Window(snap), n)
			mask := TopPublisherMask(ds, snap, n)
			got := map[string]bool{}
			for id, in := range mask {
				if in {
					got[ds.PublisherName(int32(id))] = true
				}
			}
			if len(got) != len(want) {
				t.Fatalf("%s top-%d = %v, want %v", snap.Label(), n, got, want)
			}
			for p := range want {
				if !got[p] {
					t.Errorf("%s top-%d missing %s", snap.Label(), n, p)
				}
			}
		}
	}
}

func TestMacroDatasetMatchesLegacy(t *testing.T) {
	store, sched := twoSnapStore()
	ds := store.Freeze()
	for _, snap := range sched {
		got := MacroDataset(ds, snap, snap.Days)
		want := Macro(store.Window(snap), snap.Days)
		if got.Publishers != want.Publishers || got.SampledViews != want.SampledViews ||
			got.DistinctGeos != want.DistinctGeos ||
			!approxEq(got.ViewsRepresented, want.ViewsRepresented) ||
			!approxEq(got.ViewHours, want.ViewHours) ||
			!approxEq(got.DailyViewHours, want.DailyViewHours) {
			t.Errorf("%s: MacroDataset = %+v, want %+v", snap.Label(), got, want)
		}
	}
}

func TestAnalyzeDimWeightedRecords(t *testing.T) {
	// Weighted + multi-CDN records through the fused pass vs legacy.
	sched := simclock.MakeSchedule(14, 2)[:1]
	store := telemetry.NewStore()
	a := mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A", "B", "C"}, 1800, 7, false)
	b := mk("p2", 1, "http://c/b.mpd", "iPhone", []string{"B"}, 5400, 3, false)
	c := mk("p3", 1, "http://c/c.m3u8", "UnknownDevice", nil, 3600, 0, false)
	store.Append(a, b, c)
	ds := store.Freeze()
	bundle := AnalyzeDim(ds, sched, ds.CDNCol())
	requireSeriesEqual(t, "weighted/cdn/viewhours", bundle.ViewHours, ShareOfViewHours(store, sched, CDNDim, nil))
	requireSeriesEqual(t, "weighted/cdn/publishers", bundle.Publishers, ShareOfPublishers(store, sched, CDNDim))
	pb := AnalyzeDim(ds, sched, ds.PlatformCol())
	requireSeriesEqual(t, "weighted/platform/views", pb.Views, ShareOfViews(store, sched, PlatformDim, nil))
}
