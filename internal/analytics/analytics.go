// Package analytics implements the paper's characterization
// methodology (§4): for each management-plane dimension — streaming
// protocol, playback platform, CDN — it computes, from view records
// alone, how the dimension evolved across publishers and across
// view-hours, how many instances each publisher operates, and how
// instance counts correlate with publisher size. Each exported function
// corresponds to a figure family; the core package maps them onto the
// specific figure numbers.
package analytics

import (
	"cmp"
	"math"
	"slices"
	"sort"

	"vmp/internal/device"
	"vmp/internal/manifest"
	"vmp/internal/simclock"
	"vmp/internal/stats"
	"vmp/internal/telemetry"
)

// sortedKeys returns m's keys in ascending order. Every aggregation in
// this package that folds a map into a slice or a float sum iterates
// via sortedKeys so the fold order — and therefore the last-ulp
// rounding of the figures — is identical on every run; vmplint's
// maporder analyzer enforces this at each accumulation site.
func sortedKeys[K cmp.Ordered, V any](m map[K]V) []K {
	keys := make([]K, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Dim extracts the dimension value(s) a view record contributes to: a
// protocol name, a platform name, or the CDN(s) that served it.
type Dim func(*telemetry.ViewRecord) []string

// ProtocolDim attributes a record to the streaming protocol inferred
// from its manifest URL (Table 1), exactly as the paper does.
func ProtocolDim(r *telemetry.ViewRecord) []string {
	return []string{manifest.InferProtocol(r.URL).String()}
}

// PlatformDim attributes a record to its platform category.
func PlatformDim(r *telemetry.ViewRecord) []string {
	m, ok := device.ByName(r.Device)
	if !ok {
		return nil
	}
	return []string{m.Platform.String()}
}

// CDNDim attributes a record to every CDN that served chunks during
// the view (§3 footnote: a single view may use multiple CDNs).
func CDNDim(r *telemetry.ViewRecord) []string { return r.CDNs }

// DeviceDim attributes a record to its device model, restricted to one
// platform (the within-platform splits of Fig 10); records from other
// platforms contribute nothing.
func DeviceDim(pl device.Platform) Dim {
	return func(r *telemetry.ViewRecord) []string {
		m, ok := device.ByName(r.Device)
		if !ok || m.Platform != pl {
			return nil
		}
		return []string{m.Name}
	}
}

// TimeSeries is one per-snapshot percentage series per dimension value.
type TimeSeries struct {
	Snapshots []string             // snapshot labels, chronological
	Keys      []string             // dimension values, stable order
	Series    map[string][]float64 // key → percentage per snapshot
}

// newTimeSeries allocates a series spanning the schedule.
func newTimeSeries(sched simclock.Schedule) *TimeSeries {
	ts := &TimeSeries{Series: make(map[string][]float64)}
	for _, s := range sched {
		ts.Snapshots = append(ts.Snapshots, s.Label())
	}
	return ts
}

func (ts *TimeSeries) row(key string) []float64 {
	row, ok := ts.Series[key]
	if !ok {
		row = make([]float64, len(ts.Snapshots))
		ts.Series[key] = row
		ts.Keys = append(ts.Keys, key)
	}
	return row
}

// Latest returns the final value of a key's series, or 0.
func (ts *TimeSeries) Latest(key string) float64 {
	row, ok := ts.Series[key]
	if !ok || len(row) == 0 {
		return 0
	}
	return row[len(row)-1]
}

// First returns the first value of a key's series, or 0.
func (ts *TimeSeries) First(key string) float64 {
	row, ok := ts.Series[key]
	if !ok || len(row) == 0 {
		return 0
	}
	return row[0]
}

// sortKeys normalizes key order for deterministic rendering.
func (ts *TimeSeries) sortKeys() { sort.Strings(ts.Keys) }

// ShareOfPublishers computes, per snapshot, the percentage of
// publishers with at least one view on each dimension value (Figs 2a,
// 7, 11a). Percentages can sum above 100 because publishers support
// multiple values.
func ShareOfPublishers(store *telemetry.Store, sched simclock.Schedule, dim Dim) *TimeSeries {
	ts := newTimeSeries(sched)
	for si, snap := range sched {
		recs := store.Window(snap)
		pubs := map[string]bool{}
		byKey := map[string]map[string]bool{}
		for i := range recs {
			r := &recs[i]
			pubs[r.Publisher] = true
			for _, k := range dim(r) {
				set := byKey[k]
				if set == nil {
					set = map[string]bool{}
					byKey[k] = set
				}
				set[r.Publisher] = true
			}
		}
		if len(pubs) == 0 {
			continue
		}
		for _, k := range sortedKeys(byKey) {
			ts.row(k)[si] = 100 * float64(len(byKey[k])) / float64(len(pubs))
		}
	}
	ts.sortKeys()
	return ts
}

// ShareOfViewHours computes, per snapshot, the percentage of
// view-hours attributed to each dimension value (Figs 2b, 6a, 11b).
// Records from publishers in exclude are dropped first (Figs 2c, 6b).
// Records contributing multiple values (multi-CDN views) split their
// view-hours evenly.
func ShareOfViewHours(store *telemetry.Store, sched simclock.Schedule, dim Dim, exclude map[string]bool) *TimeSeries {
	return shareOf(store, sched, dim, exclude, (*telemetry.ViewRecord).ViewHours)
}

// ShareOfViews is ShareOfViewHours with views instead of view-hours as
// the measure (Fig 6c).
func ShareOfViews(store *telemetry.Store, sched simclock.Schedule, dim Dim, exclude map[string]bool) *TimeSeries {
	return shareOf(store, sched, dim, exclude, (*telemetry.ViewRecord).Views)
}

func shareOf(store *telemetry.Store, sched simclock.Schedule, dim Dim, exclude map[string]bool,
	measure func(*telemetry.ViewRecord) float64) *TimeSeries {
	ts := newTimeSeries(sched)
	for si, snap := range sched {
		recs := store.Window(snap)
		total := 0.0
		byKey := map[string]float64{}
		for i := range recs {
			r := &recs[i]
			if exclude[r.Publisher] {
				continue
			}
			m := measure(r)
			keys := dim(r)
			if len(keys) == 0 {
				continue
			}
			total += m
			share := m / float64(len(keys))
			for _, k := range keys {
				byKey[k] += share
			}
		}
		if total == 0 {
			continue
		}
		for _, k := range sortedKeys(byKey) {
			ts.row(k)[si] = 100 * byKey[k] / total
		}
	}
	ts.sortKeys()
	return ts
}

// TopPublishersByViewHours returns the n publishers with the most
// view-hours in the record set, for the paper's exclusion analyses.
func TopPublishersByViewHours(recs []telemetry.ViewRecord, n int) map[string]bool {
	vh := map[string]float64{}
	for i := range recs {
		vh[recs[i].Publisher] += recs[i].ViewHours()
	}
	type pv struct {
		p string
		v float64
	}
	all := make([]pv, 0, len(vh))
	for _, p := range sortedKeys(vh) {
		all = append(all, pv{p, vh[p]})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].v != all[j].v {
			return all[i].v > all[j].v
		}
		return all[i].p < all[j].p
	})
	out := map[string]bool{}
	for i := 0; i < n && i < len(all); i++ {
		out[all[i].p] = true
	}
	return out
}

// Histogram is the two-bar-per-count view of Figs 3a, 9a, 12a: for
// each instance count n, the percentage of publishers operating n
// instances and the percentage of view-hours those publishers carry.
type Histogram struct {
	Counts []int // ascending instance counts present
	PubPct []float64
	VHPct  []float64
}

// At returns the (pubPct, vhPct) pair for count n, or zeros.
func (h *Histogram) At(n int) (pubPct, vhPct float64) {
	for i, c := range h.Counts {
		if c == n {
			return h.PubPct[i], h.VHPct[i]
		}
	}
	return 0, 0
}

// InstancesPerPublisher computes the instance-count histogram for one
// snapshot's records.
func InstancesPerPublisher(recs []telemetry.ViewRecord, dim Dim) *Histogram {
	pubKeys := map[string]map[string]bool{}
	pubVH := map[string]float64{}
	total := 0.0
	for i := range recs {
		r := &recs[i]
		set := pubKeys[r.Publisher]
		if set == nil {
			set = map[string]bool{}
			pubKeys[r.Publisher] = set
		}
		for _, k := range dim(r) {
			set[k] = true
		}
		vh := r.ViewHours()
		pubVH[r.Publisher] += vh
		total += vh
	}
	nPubs := len(pubKeys)
	byCount := map[int]*struct{ pubs, vh float64 }{}
	for _, pub := range sortedKeys(pubKeys) {
		n := len(pubKeys[pub])
		e := byCount[n]
		if e == nil {
			e = &struct{ pubs, vh float64 }{}
			byCount[n] = e
		}
		e.pubs++
		e.vh += pubVH[pub]
	}
	h := &Histogram{}
	for n := range byCount {
		h.Counts = append(h.Counts, n)
	}
	sort.Ints(h.Counts)
	for _, n := range h.Counts {
		e := byCount[n]
		h.PubPct = append(h.PubPct, 100*e.pubs/float64(nPubs))
		if total > 0 {
			h.VHPct = append(h.VHPct, 100*e.vh/total)
		} else {
			h.VHPct = append(h.VHPct, 0)
		}
	}
	return h
}

// BucketBreakdown is the Figs 3b/9b/12b view: publishers grouped into
// daily-view-hour decades, each decade broken down by instance count.
type BucketBreakdown struct {
	// Buckets[i] holds, for decade i, a map from instance count to the
	// percentage of ALL publishers that land in this (decade, count)
	// cell — matching the paper's bars, whose heights are shares of
	// the whole population.
	Buckets []map[int]float64
	// PubsInBucket[i] is the percentage of publishers in decade i.
	PubsInBucket []float64
}

// VHBucket maps a publisher's daily view-hours (X units) to its decade
// index in [0, NumBuckets).
func VHBucket(dailyVH float64, numBuckets int) int {
	if dailyVH <= 0 {
		return 0
	}
	b := int(math.Floor(math.Log10(dailyVH))) + 1
	if b < 0 {
		b = 0
	}
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// InstancesByBucket computes the bucketed breakdown from one
// snapshot's records. snapshotDays converts window view-hours to daily
// view-hours for bucketing.
func InstancesByBucket(recs []telemetry.ViewRecord, dim Dim, snapshotDays, numBuckets int) *BucketBreakdown {
	if snapshotDays <= 0 {
		snapshotDays = 1
	}
	pubKeys := map[string]map[string]bool{}
	pubVH := map[string]float64{}
	for i := range recs {
		r := &recs[i]
		set := pubKeys[r.Publisher]
		if set == nil {
			set = map[string]bool{}
			pubKeys[r.Publisher] = set
		}
		for _, k := range dim(r) {
			set[k] = true
		}
		pubVH[r.Publisher] += r.ViewHours()
	}
	bb := &BucketBreakdown{
		Buckets:      make([]map[int]float64, numBuckets),
		PubsInBucket: make([]float64, numBuckets),
	}
	for i := range bb.Buckets {
		bb.Buckets[i] = map[int]float64{}
	}
	nPubs := float64(len(pubKeys))
	if nPubs == 0 {
		return bb
	}
	for _, pub := range sortedKeys(pubKeys) {
		b := VHBucket(pubVH[pub]/float64(snapshotDays), numBuckets)
		bb.Buckets[b][len(pubKeys[pub])] += 100 / nPubs
		bb.PubsInBucket[b] += 100 / nPubs
	}
	return bb
}

// AveragesSeries is the Figs 3c/9c/12c view: the per-snapshot average
// instance count across publishers, plain and view-hour weighted.
type AveragesSeries struct {
	Snapshots []string
	Mean      []float64
	Weighted  []float64
}

// AverageInstances computes the instance-count averages over time.
func AverageInstances(store *telemetry.Store, sched simclock.Schedule, dim Dim) *AveragesSeries {
	out := &AveragesSeries{}
	for _, snap := range sched {
		recs := store.Window(snap)
		pubKeys := map[string]map[string]bool{}
		pubVH := map[string]float64{}
		for i := range recs {
			r := &recs[i]
			set := pubKeys[r.Publisher]
			if set == nil {
				set = map[string]bool{}
				pubKeys[r.Publisher] = set
			}
			for _, k := range dim(r) {
				set[k] = true
			}
			pubVH[r.Publisher] += r.ViewHours()
		}
		var counts, weights []float64
		for _, pub := range sortedKeys(pubKeys) {
			counts = append(counts, float64(len(pubKeys[pub])))
			weights = append(weights, pubVH[pub])
		}
		out.Snapshots = append(out.Snapshots, snap.Label())
		out.Mean = append(out.Mean, stats.Mean(counts))
		out.Weighted = append(out.Weighted, stats.WeightedMean(counts, weights))
	}
	return out
}

// CDF is a plottable empirical CDF.
type CDF struct {
	X []float64
	P []float64
}

// FromECDF converts a stats.ECDF to plottable points.
func FromECDF(e *stats.ECDF) CDF {
	xs, ps := e.Points()
	return CDF{X: xs, P: ps}
}

// SupporterShareCDF computes Fig 4: across publishers with at least
// one view on the given dimension value, the distribution of the
// percentage of each publisher's view-hours attributed to that value.
func SupporterShareCDF(recs []telemetry.ViewRecord, dim Dim, key string) CDF {
	pubTotal := map[string]float64{}
	pubKey := map[string]float64{}
	for i := range recs {
		r := &recs[i]
		vh := r.ViewHours()
		pubTotal[r.Publisher] += vh
		keys := dim(r)
		for _, k := range keys {
			if k == key {
				pubKey[r.Publisher] += vh / float64(len(keys))
			}
		}
	}
	var shares []float64
	for _, pub := range sortedKeys(pubKey) {
		if t := pubTotal[pub]; t > 0 {
			shares = append(shares, 100*pubKey[pub]/t)
		}
	}
	return FromECDF(stats.NewECDF(shares))
}

// DurationCDFs computes Fig 8: per-platform CDFs of individual view
// durations in hours. Records are expanded by their sampling weights so
// the CDF is over views, matching the paper's census.
func DurationCDFs(recs []telemetry.ViewRecord) map[string]CDF {
	type sample struct{ durs, weights []float64 }
	byPlatform := map[string]*sample{}
	for i := range recs {
		keys := PlatformDim(&recs[i])
		if len(keys) == 0 {
			continue
		}
		s := byPlatform[keys[0]]
		if s == nil {
			s = &sample{}
			byPlatform[keys[0]] = s
		}
		s.durs = append(s.durs, recs[i].ViewSec/3600)
		s.weights = append(s.weights, recs[i].Views())
	}
	out := map[string]CDF{}
	for pl, s := range byPlatform {
		xs, ps := stats.NewWeightedECDF(s.durs, s.weights).Points()
		out[pl] = CDF{X: xs, P: ps}
	}
	return out
}

// MacroStats is the §3 "macroscopic context": the aggregate scale of
// the dataset — publishers, views represented, view-hours, distinct
// geographies served (the paper: >100 publishers, >100 billion views,
// aggregate 0.06 billion daily view-hours, 180 countries).
type MacroStats struct {
	Publishers       int
	SampledViews     int
	ViewsRepresented float64
	ViewHours        float64
	DailyViewHours   float64
	DistinctGeos     int
}

// Macro computes the macroscopic stats over one snapshot's records.
// snapshotDays converts window view-hours to a daily rate.
func Macro(recs []telemetry.ViewRecord, snapshotDays int) MacroStats {
	if snapshotDays <= 0 {
		snapshotDays = 1
	}
	pubs := map[string]struct{}{}
	geos := map[string]struct{}{}
	var m MacroStats
	for i := range recs {
		r := &recs[i]
		pubs[r.Publisher] = struct{}{}
		if r.Geo != "" {
			geos[r.Geo] = struct{}{}
		}
		m.SampledViews++
		m.ViewsRepresented += r.Views()
		m.ViewHours += r.ViewHours()
	}
	m.Publishers = len(pubs)
	m.DistinctGeos = len(geos)
	m.DailyViewHours = m.ViewHours / float64(snapshotDays)
	return m
}

// SegregationStats reproduces §4.3's live/VoD segregation measurement
// from records: among publishers observed on ≥2 CDNs serving both live
// and VoD, the fraction with at least one CDN seen only for VoD, and
// only for live.
type SegregationStats struct {
	EligiblePublishers int
	VoDOnlyFrac        float64
	LiveOnlyFrac       float64
	FullySegregated    int // publishers where every CDN is exclusive
}

// Segregation computes SegregationStats over one snapshot's records.
func Segregation(recs []telemetry.ViewRecord) SegregationStats {
	type usage struct{ live, vod bool }
	pubCDN := map[string]map[string]*usage{}
	for i := range recs {
		r := &recs[i]
		m := pubCDN[r.Publisher]
		if m == nil {
			m = map[string]*usage{}
			pubCDN[r.Publisher] = m
		}
		for _, c := range r.CDNs {
			u := m[c]
			if u == nil {
				u = &usage{}
				m[c] = u
			}
			if r.Live {
				u.live = true
			} else {
				u.vod = true
			}
		}
	}
	var s SegregationStats
	var vodOnly, liveOnly int
	for _, m := range pubCDN {
		if len(m) < 2 {
			continue
		}
		anyLive, anyVoD := false, false
		for _, u := range m {
			anyLive = anyLive || u.live
			anyVoD = anyVoD || u.vod
		}
		if !anyLive || !anyVoD {
			continue
		}
		s.EligiblePublishers++
		hasVoDOnly, hasLiveOnly, allExclusive := false, false, true
		for _, u := range m {
			switch {
			case u.vod && !u.live:
				hasVoDOnly = true
			case u.live && !u.vod:
				hasLiveOnly = true
			default:
				allExclusive = false
			}
		}
		if hasVoDOnly {
			vodOnly++
		}
		if hasLiveOnly {
			liveOnly++
		}
		if allExclusive {
			s.FullySegregated++
		}
	}
	if s.EligiblePublishers > 0 {
		s.VoDOnlyFrac = float64(vodOnly) / float64(s.EligiblePublishers)
		s.LiveOnlyFrac = float64(liveOnly) / float64(s.EligiblePublishers)
	}
	return s
}
