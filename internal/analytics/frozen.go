package analytics

// Frozen-dataset ports of the §4 hot loops. The legacy functions in
// analytics.go scan a mutable Store, copying every snapshot window and
// accumulating into string-keyed maps; the functions here run over a
// telemetry.Dataset — immutable, timestamp-sorted, with interned
// dimension IDs — so windows are zero-copy sub-ranges and accumulation
// is ID-indexed slice arithmetic. AnalyzeDim additionally fuses the
// publishers / view-hours / views / instance-average passes that each
// rescanned the same windows into one pass per window. Results match
// the legacy functions (integer-derived percentages exactly; sums that
// legacy code accumulated in randomized map order agree to rounding).

import (
	"sort"

	"vmp/internal/simclock"
	"vmp/internal/stats"
	"vmp/internal/telemetry"
)

// DimBundle holds every per-snapshot series the §4 figure families
// derive from one dimension: publisher shares (Figs 2a/7/11a),
// view-hour shares (2b/6a/11b), view shares (6c), and instance-count
// averages (3c/9c/12c).
type DimBundle struct {
	Publishers *TimeSeries
	ViewHours  *TimeSeries
	Views      *TimeSeries
	Averages   *AveragesSeries
}

// AnalyzeDim computes a dimension's full bundle in a single fused pass
// per snapshot window, replacing four separate scans of the same
// records.
func AnalyzeDim(ds *telemetry.Dataset, sched simclock.Schedule, col *telemetry.DimColumn) *DimBundle {
	b := &DimBundle{
		Publishers: newTimeSeries(sched),
		ViewHours:  newTimeSeries(sched),
		Views:      newTimeSeries(sched),
		Averages:   &AveragesSeries{},
	}
	nKeys := col.Cardinality()
	nPubs := ds.NumPublishers()
	var (
		stamp       int32
		pubStamp    = make([]int32, nPubs)
		pubVH       = make([]float64, nPubs)
		pubCount    = make([]int32, nPubs) // distinct keys per publisher
		pubOrder    = make([]int32, 0, nPubs)
		keyStamp    = make([]int32, nKeys)
		keyPubs     = make([]int32, nKeys) // distinct publishers per key
		keyVH       = make([]float64, nKeys)
		keyViews    = make([]float64, nKeys)
		keyOrder    = make([]int32, 0, nKeys)
		keyPubStamp = make([]int32, nKeys*nPubs)
		counts      = make([]float64, 0, nPubs)
		weights     = make([]float64, 0, nPubs)
	)
	for si, snap := range sched {
		stamp++
		lo, hi := ds.WindowBounds(snap)
		pubOrder, keyOrder = pubOrder[:0], keyOrder[:0]
		var totalVH, totalViews float64
		for i := lo; i < hi; i++ {
			p := ds.PublisherID(i)
			if pubStamp[p] != stamp {
				pubStamp[p] = stamp
				pubVH[p] = 0
				pubCount[p] = 0
				pubOrder = append(pubOrder, p)
			}
			vh := ds.ViewHoursAt(i)
			pubVH[p] += vh
			ids := col.IDs(i)
			if len(ids) == 0 {
				continue
			}
			for _, k := range ids {
				if keyStamp[k] != stamp {
					keyStamp[k] = stamp
					keyPubs[k] = 0
					keyVH[k] = 0
					keyViews[k] = 0
					keyOrder = append(keyOrder, k)
				}
				if cell := int(k)*nPubs + int(p); keyPubStamp[cell] != stamp {
					keyPubStamp[cell] = stamp
					keyPubs[k]++
					pubCount[p]++
				}
			}
			vw := ds.ViewsAt(i)
			totalVH += vh
			totalViews += vw
			nk := float64(len(ids))
			for _, k := range ids {
				keyVH[k] += vh / nk
				keyViews[k] += vw / nk
			}
		}
		if len(pubOrder) > 0 {
			den := float64(len(pubOrder))
			for _, k := range keyOrder {
				b.Publishers.row(col.Name(k))[si] = 100 * float64(keyPubs[k]) / den
			}
		}
		if totalVH != 0 {
			for _, k := range keyOrder {
				b.ViewHours.row(col.Name(k))[si] = 100 * keyVH[k] / totalVH
			}
		}
		if totalViews != 0 {
			for _, k := range keyOrder {
				b.Views.row(col.Name(k))[si] = 100 * keyViews[k] / totalViews
			}
		}
		counts, weights = counts[:0], weights[:0]
		for _, p := range pubOrder {
			counts = append(counts, float64(pubCount[p]))
			weights = append(weights, pubVH[p])
		}
		b.Averages.Snapshots = append(b.Averages.Snapshots, snap.Label())
		b.Averages.Mean = append(b.Averages.Mean, stats.Mean(counts))
		b.Averages.Weighted = append(b.Averages.Weighted, stats.WeightedMean(counts, weights))
	}
	b.Publishers.sortKeys()
	b.ViewHours.sortKeys()
	b.Views.sortKeys()
	return b
}

// ShareOfViewHoursDataset is ShareOfViewHours over a frozen dataset;
// exclude is a publisher-ID-indexed mask (nil excludes nothing).
func ShareOfViewHoursDataset(ds *telemetry.Dataset, sched simclock.Schedule, col *telemetry.DimColumn, exclude []bool) *TimeSeries {
	return shareOfDataset(ds, sched, col, exclude, false)
}

// ShareOfViewsDataset is ShareOfViews over a frozen dataset.
func ShareOfViewsDataset(ds *telemetry.Dataset, sched simclock.Schedule, col *telemetry.DimColumn, exclude []bool) *TimeSeries {
	return shareOfDataset(ds, sched, col, exclude, true)
}

func shareOfDataset(ds *telemetry.Dataset, sched simclock.Schedule, col *telemetry.DimColumn, exclude []bool, useViews bool) *TimeSeries {
	ts := newTimeSeries(sched)
	nKeys := col.Cardinality()
	var (
		stamp    int32
		keyStamp = make([]int32, nKeys)
		keyVal   = make([]float64, nKeys)
		keyOrder = make([]int32, 0, nKeys)
	)
	for si, snap := range sched {
		stamp++
		lo, hi := ds.WindowBounds(snap)
		keyOrder = keyOrder[:0]
		total := 0.0
		for i := lo; i < hi; i++ {
			if exclude != nil && exclude[ds.PublisherID(i)] {
				continue
			}
			ids := col.IDs(i)
			if len(ids) == 0 {
				continue
			}
			m := ds.ViewHoursAt(i)
			if useViews {
				m = ds.ViewsAt(i)
			}
			total += m
			share := m / float64(len(ids))
			for _, k := range ids {
				if keyStamp[k] != stamp {
					keyStamp[k] = stamp
					keyVal[k] = 0
					keyOrder = append(keyOrder, k)
				}
				keyVal[k] += share
			}
		}
		if total == 0 {
			continue
		}
		for _, k := range keyOrder {
			ts.row(col.Name(k))[si] = 100 * keyVal[k] / total
		}
	}
	ts.sortKeys()
	return ts
}

// windowInstances is the shared per-window aggregation of the Fig
// 3/9/12 families: distinct dimension values and view-hours per
// publisher, in first-seen publisher order.
func windowInstances(ds *telemetry.Dataset, snap simclock.Snapshot, col *telemetry.DimColumn) (pubOrder []int32, pubCount []int32, pubVH []float64, totalVH float64) {
	nKeys := col.Cardinality()
	nPubs := ds.NumPublishers()
	pubCount = make([]int32, nPubs)
	pubVH = make([]float64, nPubs)
	pubSeen := make([]bool, nPubs)
	keyPubSeen := make([]bool, nKeys*nPubs)
	lo, hi := ds.WindowBounds(snap)
	for i := lo; i < hi; i++ {
		p := ds.PublisherID(i)
		if !pubSeen[p] {
			pubSeen[p] = true
			pubOrder = append(pubOrder, p)
		}
		for _, k := range col.IDs(i) {
			if cell := int(k)*nPubs + int(p); !keyPubSeen[cell] {
				keyPubSeen[cell] = true
				pubCount[p]++
			}
		}
		vh := ds.ViewHoursAt(i)
		pubVH[p] += vh
		totalVH += vh
	}
	return pubOrder, pubCount, pubVH, totalVH
}

// InstancesPerPublisherDataset is InstancesPerPublisher over one
// snapshot of a frozen dataset.
func InstancesPerPublisherDataset(ds *telemetry.Dataset, snap simclock.Snapshot, col *telemetry.DimColumn) *Histogram {
	pubOrder, pubCount, pubVH, totalVH := windowInstances(ds, snap, col)
	maxCount := 0
	for _, p := range pubOrder {
		if int(pubCount[p]) > maxCount {
			maxCount = int(pubCount[p])
		}
	}
	pubsAt := make([]float64, maxCount+1)
	vhAt := make([]float64, maxCount+1)
	for _, p := range pubOrder {
		n := pubCount[p]
		pubsAt[n]++
		vhAt[n] += pubVH[p]
	}
	h := &Histogram{}
	nPubs := float64(len(pubOrder))
	for n := 0; n <= maxCount; n++ {
		if pubsAt[n] == 0 {
			continue
		}
		h.Counts = append(h.Counts, n)
		h.PubPct = append(h.PubPct, 100*pubsAt[n]/nPubs)
		if totalVH > 0 {
			h.VHPct = append(h.VHPct, 100*vhAt[n]/totalVH)
		} else {
			h.VHPct = append(h.VHPct, 0)
		}
	}
	return h
}

// InstancesByBucketDataset is InstancesByBucket over one snapshot of a
// frozen dataset.
func InstancesByBucketDataset(ds *telemetry.Dataset, snap simclock.Snapshot, col *telemetry.DimColumn, snapshotDays, numBuckets int) *BucketBreakdown {
	if snapshotDays <= 0 {
		snapshotDays = 1
	}
	pubOrder, pubCount, pubVH, _ := windowInstances(ds, snap, col)
	bb := &BucketBreakdown{
		Buckets:      make([]map[int]float64, numBuckets),
		PubsInBucket: make([]float64, numBuckets),
	}
	for i := range bb.Buckets {
		bb.Buckets[i] = map[int]float64{}
	}
	nPubs := float64(len(pubOrder))
	if nPubs == 0 {
		return bb
	}
	for _, p := range pubOrder {
		b := VHBucket(pubVH[p]/float64(snapshotDays), numBuckets)
		bb.Buckets[b][int(pubCount[p])] += 100 / nPubs
		bb.PubsInBucket[b] += 100 / nPubs
	}
	return bb
}

// TopPublisherMask returns a publisher-ID-indexed mask of the n
// publishers with the most view-hours inside the snapshot, the frozen
// counterpart of TopPublishersByViewHours for the exclusion analyses.
func TopPublisherMask(ds *telemetry.Dataset, snap simclock.Snapshot, n int) []bool {
	nPubs := ds.NumPublishers()
	vh := make([]float64, nPubs)
	lo, hi := ds.WindowBounds(snap)
	for i := lo; i < hi; i++ {
		vh[ds.PublisherID(i)] += ds.ViewHoursAt(i)
	}
	seen := make([]bool, nPubs)
	ids := make([]int32, 0, nPubs)
	for i := lo; i < hi; i++ {
		if p := ds.PublisherID(i); !seen[p] {
			seen[p] = true
			ids = append(ids, p)
		}
	}
	// Rank by (view-hours desc, name asc) — the legacy total order.
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		if vh[a] != vh[b] {
			return vh[a] > vh[b]
		}
		return ds.PublisherName(a) < ds.PublisherName(b)
	})
	mask := make([]bool, nPubs)
	for i := 0; i < n && i < len(ids); i++ {
		mask[ids[i]] = true
	}
	return mask
}

// MacroDataset is Macro over one snapshot of a frozen dataset.
func MacroDataset(ds *telemetry.Dataset, snap simclock.Snapshot, snapshotDays int) MacroStats {
	if snapshotDays <= 0 {
		snapshotDays = 1
	}
	var m MacroStats
	nPubs := ds.NumPublishers()
	pubSeen := make([]bool, nPubs)
	geos := map[string]struct{}{}
	pubs := 0
	lo, hi := ds.WindowBounds(snap)
	for i := lo; i < hi; i++ {
		if p := ds.PublisherID(i); !pubSeen[p] {
			pubSeen[p] = true
			pubs++
		}
		if g := ds.Record(i).Geo; g != "" {
			geos[g] = struct{}{}
		}
		m.SampledViews++
		m.ViewsRepresented += ds.ViewsAt(i)
		m.ViewHours += ds.ViewHoursAt(i)
	}
	m.Publishers = pubs
	m.DistinctGeos = len(geos)
	m.DailyViewHours = m.ViewHours / float64(snapshotDays)
	return m
}
