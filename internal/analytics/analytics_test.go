package analytics

import (
	"math"
	"testing"
	"time"

	"vmp/internal/device"
	"vmp/internal/simclock"
	"vmp/internal/telemetry"
)

// mk builds a minimal record.
func mk(pub string, day int, url, dev string, cdns []string, viewSec, weight float64, live bool) telemetry.ViewRecord {
	m, _ := device.ByName(dev)
	return telemetry.ViewRecord{
		Timestamp: simclock.DayTime(day).Add(time.Hour),
		Publisher: pub,
		VideoID:   "v",
		URL:       url,
		Device:    dev,
		OS:        m.OS,
		CDNs:      cdns,
		Bitrates:  []int{400},
		ViewSec:   viewSec,
		Weight:    weight,
		Live:      live,
	}
}

func twoSnapStore() (*telemetry.Store, simclock.Schedule) {
	sched := simclock.MakeSchedule(14, 2)[:2] // days 0-1 and 14-15
	s := telemetry.NewStore()
	// Snapshot 0: p1 all-HLS on A; p2 half DASH on B.
	s.Append(
		mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 3600, 1, false),
		mk("p1", 0, "http://c/b.m3u8", "iPhone", []string{"A"}, 3600, 1, false),
		mk("p2", 1, "http://c/c.mpd", "AndroidPhone", []string{"B"}, 3600, 1, false),
		mk("p2", 1, "http://c/d.m3u8", "Roku", []string{"B"}, 3600, 1, false),
	)
	// Snapshot 1: p2 goes all-DASH; p1 still HLS; p1 uses two CDNs in
	// one view.
	s.Append(
		mk("p1", 14, "http://c/a.m3u8", "Roku", []string{"A", "B"}, 7200, 1, false),
		mk("p2", 15, "http://c/c.mpd", "AndroidPhone", []string{"B"}, 3600, 1, true),
		mk("p2", 15, "http://c/e.mpd", "SamsungTV", []string{"C"}, 3600, 1, false),
	)
	return s, sched
}

func TestShareOfPublishers(t *testing.T) {
	s, sched := twoSnapStore()
	ts := ShareOfPublishers(s, sched, ProtocolDim)
	// Snapshot 0: both publishers have HLS views -> 100%; DASH only p2.
	if got := ts.Series["HLS"][0]; got != 100 {
		t.Errorf("HLS pubs snap0 = %v, want 100", got)
	}
	if got := ts.Series["DASH"][0]; got != 50 {
		t.Errorf("DASH pubs snap0 = %v, want 50", got)
	}
	// Snapshot 1: HLS only p1 -> 50%.
	if got := ts.Latest("HLS"); got != 50 {
		t.Errorf("HLS pubs snap1 = %v, want 50", got)
	}
}

func TestShareOfViewHours(t *testing.T) {
	s, sched := twoSnapStore()
	ts := ShareOfViewHours(s, sched, ProtocolDim, nil)
	// Snapshot 0: 4 equal view-hours, 3 HLS 1 DASH.
	if got := ts.Series["HLS"][0]; got != 75 {
		t.Errorf("HLS VH snap0 = %v, want 75", got)
	}
	if got := ts.Series["DASH"][0]; got != 25 {
		t.Errorf("DASH VH snap0 = %v, want 25", got)
	}
	// Snapshot 1: p1 2h HLS, p2 2h DASH.
	if got := ts.Latest("DASH"); got != 50 {
		t.Errorf("DASH VH snap1 = %v, want 50", got)
	}
}

func TestShareOfViewHoursExclusion(t *testing.T) {
	s, sched := twoSnapStore()
	ts := ShareOfViewHours(s, sched, ProtocolDim, map[string]bool{"p2": true})
	if got := ts.First("HLS"); got != 100 {
		t.Errorf("HLS VH excluding p2 = %v, want 100", got)
	}
	if got := ts.First("DASH"); got != 0 {
		t.Errorf("DASH VH excluding p2 = %v, want 0", got)
	}
}

func TestMultiCDNViewSplitsViewHours(t *testing.T) {
	s, sched := twoSnapStore()
	ts := ShareOfViewHours(s, sched, CDNDim, nil)
	// Snapshot 1: p1's 2h view split A/B (1h each); p2: 1h B, 1h C.
	// Totals: A=1, B=2, C=1 of 4.
	if got := ts.Latest("A"); got != 25 {
		t.Errorf("CDN A VH = %v, want 25", got)
	}
	if got := ts.Latest("B"); got != 50 {
		t.Errorf("CDN B VH = %v, want 50", got)
	}
}

func TestShareOfViewsWeighted(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	s.Append(
		mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 60, 9, false),
		mk("p1", 0, "http://c/b.mpd", "Roku", []string{"A"}, 60, 1, false),
	)
	ts := ShareOfViews(s, sched, ProtocolDim, nil)
	if got := ts.Series["HLS"][0]; got != 90 {
		t.Errorf("weighted HLS view share = %v, want 90", got)
	}
}

func TestTimeSeriesAccessors(t *testing.T) {
	s, sched := twoSnapStore()
	ts := ShareOfViewHours(s, sched, ProtocolDim, nil)
	if ts.First("HLS") != 75 || ts.Latest("HLS") != 50 {
		t.Errorf("First/Latest = %v/%v", ts.First("HLS"), ts.Latest("HLS"))
	}
	if ts.Latest("nope") != 0 || ts.First("nope") != 0 {
		t.Error("missing keys should read 0")
	}
	if len(ts.Snapshots) != 2 {
		t.Errorf("snapshots = %d", len(ts.Snapshots))
	}
}

func TestTopPublishersByViewHours(t *testing.T) {
	s, _ := twoSnapStore()
	top := TopPublishersByViewHours(s.All(), 1)
	if len(top) != 1 || !top["p2"] {
		// p2: 1+1+1+1 = 4h; p1: 1+1+2 = 4h — tie broken by name? p1
		// has 4h too. Recompute: p1 records 3600+3600+7200 = 4h;
		// p2 = 3600*4 = 4h. Tie → lexicographic p1 first.
		if !top["p1"] {
			t.Fatalf("top = %v", top)
		}
	}
	if got := TopPublishersByViewHours(s.All(), 10); len(got) != 2 {
		t.Fatalf("asking for more than exist should return all: %v", got)
	}
}

func TestInstancesPerPublisher(t *testing.T) {
	s, sched := twoSnapStore()
	recs := s.Window(sched[0])
	h := InstancesPerPublisher(recs, ProtocolDim)
	// p1: {HLS} = 1 instance; p2: {HLS, DASH} = 2.
	p1, v1 := h.At(1)
	p2, v2 := h.At(2)
	if p1 != 50 || p2 != 50 {
		t.Fatalf("pub shares = %v/%v, want 50/50", p1, p2)
	}
	if v1 != 50 || v2 != 50 {
		t.Fatalf("VH shares = %v/%v, want 50/50", v1, v2)
	}
	if p, v := h.At(9); p != 0 || v != 0 {
		t.Error("missing count should read zeros")
	}
}

func TestVHBucket(t *testing.T) {
	cases := []struct {
		vh   float64
		want int
	}{
		{0, 0}, {0.5, 0}, {1, 1}, {5, 1}, {10, 2}, {99, 2}, {1e5, 6}, {1e9, 6},
	}
	for _, c := range cases {
		if got := VHBucket(c.vh, 7); got != c.want {
			t.Errorf("VHBucket(%v) = %d, want %d", c.vh, got, c.want)
		}
	}
}

func TestInstancesByBucket(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	// p1: tiny (0.5 vh/day → bucket 0), 1 protocol.
	s.Append(mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 1800, 2, false))
	// p2: 50 vh/day → bucket 2, 2 protocols.
	s.Append(
		mk("p2", 0, "http://c/b.m3u8", "Roku", []string{"A"}, 3600, 50, false),
		mk("p2", 0, "http://c/c.mpd", "Roku", []string{"A"}, 3600, 50, false),
	)
	bb := InstancesByBucket(s.Window(sched[0]), ProtocolDim, 2, 7)
	if got := bb.Buckets[0][1]; got != 50 {
		t.Errorf("bucket0 count1 = %v, want 50", got)
	}
	if got := bb.Buckets[2][2]; got != 50 {
		t.Errorf("bucket2 count2 = %v, want 50", got)
	}
	if bb.PubsInBucket[0] != 50 || bb.PubsInBucket[2] != 50 {
		t.Errorf("bucket populations = %v", bb.PubsInBucket)
	}
}

func TestAverageInstances(t *testing.T) {
	s, sched := twoSnapStore()
	avg := AverageInstances(s, sched, ProtocolDim)
	// Snapshot 0: p1 has 1 protocol, p2 has 2 → mean 1.5. VH equal →
	// weighted 1.5 too.
	if avg.Mean[0] != 1.5 {
		t.Errorf("mean = %v, want 1.5", avg.Mean[0])
	}
	if avg.Weighted[0] != 1.5 {
		t.Errorf("weighted = %v, want 1.5", avg.Weighted[0])
	}
	// Snapshot 1: p1 {HLS}, p2 {DASH} → mean 1.
	if avg.Mean[1] != 1 {
		t.Errorf("mean snap1 = %v, want 1", avg.Mean[1])
	}
}

func TestWeightedAverageRespondsToVH(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	// Big publisher with 2 protocols, tiny one with 1.
	s.Append(
		mk("big", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 3600, 1000, false),
		mk("big", 0, "http://c/b.mpd", "Roku", []string{"A"}, 3600, 1000, false),
		mk("small", 0, "http://c/c.m3u8", "Roku", []string{"A"}, 3600, 1, false),
	)
	avg := AverageInstances(s, sched, ProtocolDim)
	if avg.Mean[0] != 1.5 {
		t.Errorf("mean = %v", avg.Mean[0])
	}
	if avg.Weighted[0] < 1.99 {
		t.Errorf("weighted = %v, want ~2 (big publisher dominates)", avg.Weighted[0])
	}
}

func TestSupporterShareCDF(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	// p1: 25% of VH via DASH; p2: 100%; p3: no DASH at all.
	s.Append(
		mk("p1", 0, "http://c/a.mpd", "Roku", []string{"A"}, 3600, 1, false),
		mk("p1", 0, "http://c/b.m3u8", "Roku", []string{"A"}, 3600, 3, false),
		mk("p2", 0, "http://c/c.mpd", "Roku", []string{"A"}, 3600, 1, false),
		mk("p3", 0, "http://c/d.m3u8", "Roku", []string{"A"}, 3600, 1, false),
	)
	cdf := SupporterShareCDF(s.Window(sched[0]), ProtocolDim, "DASH")
	if len(cdf.X) != 2 {
		t.Fatalf("CDF over supporters should have 2 points, got %v", cdf.X)
	}
	if cdf.X[0] != 25 || cdf.X[1] != 100 {
		t.Fatalf("CDF X = %v, want [25 100]", cdf.X)
	}
	if cdf.P[0] != 0.5 || cdf.P[1] != 1 {
		t.Fatalf("CDF P = %v, want [0.5 1]", cdf.P)
	}
}

func TestDurationCDFs(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	s.Append(
		mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 1800, 1, false),
		mk("p1", 0, "http://c/b.m3u8", "Roku", []string{"A"}, 5400, 1, false),
		mk("p1", 0, "http://c/c.m3u8", "iPhone", []string{"A"}, 360, 1, false),
	)
	cdfs := DurationCDFs(s.Window(sched[0]))
	set, ok := cdfs["SetTop"]
	if !ok || len(set.X) != 2 {
		t.Fatalf("SetTop CDF = %+v", set)
	}
	if math.Abs(set.X[0]-0.5) > 1e-12 || math.Abs(set.X[1]-1.5) > 1e-12 {
		t.Fatalf("SetTop durations = %v", set.X)
	}
	if _, ok := cdfs["Mobile"]; !ok {
		t.Fatal("Mobile CDF missing")
	}
}

func TestSegregation(t *testing.T) {
	sched := simclock.MakeSchedule(14, 2)[:1]
	s := telemetry.NewStore()
	// pubA: CDN A live+vod, CDN B vod-only → has a VoD-only CDN.
	a1 := mk("pubA", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 60, 1, true)
	a2 := mk("pubA", 0, "http://c/b.m3u8", "Roku", []string{"A"}, 60, 1, false)
	a3 := mk("pubA", 0, "http://c/c.m3u8", "Roku", []string{"B"}, 60, 1, false)
	// pubB: fully segregated: A vod-only, B live-only.
	b1 := mk("pubB", 0, "http://c/d.m3u8", "Roku", []string{"A"}, 60, 1, false)
	b2 := mk("pubB", 0, "http://c/e.m3u8", "Roku", []string{"B"}, 60, 1, true)
	// pubC: single CDN → not eligible.
	c1 := mk("pubC", 0, "http://c/f.m3u8", "Roku", []string{"A"}, 60, 1, true)
	c2 := mk("pubC", 0, "http://c/g.m3u8", "Roku", []string{"A"}, 60, 1, false)
	s.Append(a1, a2, a3, b1, b2, c1, c2)
	st := Segregation(s.Window(sched[0]))
	if st.EligiblePublishers != 2 {
		t.Fatalf("eligible = %d, want 2", st.EligiblePublishers)
	}
	if st.VoDOnlyFrac != 1.0 { // both pubA and pubB have a VoD-only CDN
		t.Errorf("VoDOnlyFrac = %v, want 1.0", st.VoDOnlyFrac)
	}
	if st.LiveOnlyFrac != 0.5 { // only pubB
		t.Errorf("LiveOnlyFrac = %v, want 0.5", st.LiveOnlyFrac)
	}
	if st.FullySegregated != 1 {
		t.Errorf("FullySegregated = %d, want 1", st.FullySegregated)
	}
}

func TestSegregationEmpty(t *testing.T) {
	st := Segregation(nil)
	if st.EligiblePublishers != 0 || st.VoDOnlyFrac != 0 {
		t.Fatal("empty input should yield zero stats")
	}
}

func TestDeviceDim(t *testing.T) {
	r := mk("p", 0, "http://c/a.m3u8", "Roku", []string{"A"}, 60, 1, false)
	if got := DeviceDim(device.SetTop)(&r); len(got) != 1 || got[0] != "Roku" {
		t.Fatalf("DeviceDim(SetTop) = %v", got)
	}
	if got := DeviceDim(device.Mobile)(&r); got != nil {
		t.Fatalf("DeviceDim(Mobile) on a Roku record = %v, want nil", got)
	}
	bad := r
	bad.Device = "Unknown9000"
	if got := PlatformDim(&bad); got != nil {
		t.Fatal("unknown devices should contribute nothing")
	}
}
