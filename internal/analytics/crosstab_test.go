package analytics

import (
	"math"
	"testing"

	"vmp/internal/ecosystem"
	"vmp/internal/telemetry"
)

func deviceNameDim(r *telemetry.ViewRecord) []string { return []string{r.Device} }

func TestCrossTabBasics(t *testing.T) {
	recs := []telemetry.ViewRecord{
		mk("p1", 0, "http://c/a.m3u8", "iPhone", []string{"A"}, 3600, 1, false),
		mk("p1", 0, "http://c/b.mpd", "Roku", []string{"A"}, 3600, 1, false),
		mk("p1", 0, "http://c/c.m3u8", "Roku", []string{"A"}, 3600, 2, false),
	}
	ct := Cross(recs, deviceNameDim, ProtocolDim)
	if ct.Total != 4 {
		t.Fatalf("total = %v, want 4 view-hours", ct.Total)
	}
	if got := ct.At("iPhone", "HLS"); got != 1 {
		t.Errorf("iPhone×HLS = %v, want 1", got)
	}
	if got := ct.At("Roku", "DASH"); got != 1 {
		t.Errorf("Roku×DASH = %v, want 1", got)
	}
	if got := ct.RowShare("Roku", "HLS"); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Roku HLS row share = %v, want 2/3", got)
	}
	if got := ct.ColShare("Roku", "HLS"); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("Roku HLS col share = %v, want 2/3", got)
	}
	if ct.At("Xbox", "HLS") != 0 || ct.RowShare("Xbox", "HLS") != 0 || ct.ColShare("Xbox", "HLS") != 0 {
		t.Error("missing cells should read 0")
	}
}

func TestCrossTabMultiValueSplit(t *testing.T) {
	recs := []telemetry.ViewRecord{
		mk("p1", 0, "http://c/a.m3u8", "Roku", []string{"A", "B"}, 3600, 1, false),
	}
	ct := Cross(recs, CDNDim, ProtocolDim)
	if got := ct.At("A", "HLS"); got != 0.5 {
		t.Fatalf("A×HLS = %v, want 0.5 (split across 2 CDNs)", got)
	}
	if ct.Total != 1 {
		t.Fatalf("total = %v, want 1", ct.Total)
	}
}

// TestCrossTabAppleHLSOnly verifies, on real generated records, the
// §2 constraint end to end: every view-hour on an Apple device was
// served over HLS.
func TestCrossTabAppleHLSOnly(t *testing.T) {
	e := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	recs := e.GenerateSnapshot(e.Schedule.Latest())
	ct := Cross(recs, deviceNameDim, ProtocolDim)
	for _, dev := range []string{"iPhone", "iPad", "AppleTV"} {
		if share := ct.RowShare(dev, "HLS"); share != 1 {
			t.Errorf("%s HLS share = %v, want 1.0 (Apple devices are HLS-only)", dev, share)
		}
	}
	// Silverlight is SmoothStreaming-only.
	if share := ct.RowShare("Silverlight", "SmoothStreaming"); share != 1 {
		t.Errorf("Silverlight Smooth share = %v, want 1.0", share)
	}
}

func TestCrossTabEmpty(t *testing.T) {
	ct := Cross(nil, deviceNameDim, ProtocolDim)
	if ct.Total != 0 || len(ct.RowKeys) != 0 {
		t.Fatal("empty input should yield an empty table")
	}
}
