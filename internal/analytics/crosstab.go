package analytics

import (
	"sort"

	"vmp/internal/telemetry"
)

// CrossTab is a two-dimensional view-hour breakdown, e.g. protocol ×
// platform: the kind of slice-and-dice the dataset supports ("we can
// examine, for example, the number of view-hours of a publisher's
// content delivered from a given CDN, over HLS, to iPhones", §3).
type CrossTab struct {
	RowKeys []string
	ColKeys []string
	// ViewHours[row][col] holds absolute view-hours.
	ViewHours map[string]map[string]float64
	Total     float64
}

// Cross computes the cross-tabulation of two dimensions over a record
// set. Records contributing multiple values on a dimension split their
// view-hours evenly across the combinations.
func Cross(recs []telemetry.ViewRecord, rowDim, colDim Dim) *CrossTab {
	ct := &CrossTab{ViewHours: make(map[string]map[string]float64)}
	rowSeen := map[string]bool{}
	colSeen := map[string]bool{}
	for i := range recs {
		r := &recs[i]
		rows := rowDim(r)
		cols := colDim(r)
		if len(rows) == 0 || len(cols) == 0 {
			continue
		}
		vh := r.ViewHours()
		ct.Total += vh
		share := vh / float64(len(rows)*len(cols))
		for _, rk := range rows {
			if !rowSeen[rk] {
				rowSeen[rk] = true
				ct.RowKeys = append(ct.RowKeys, rk)
				ct.ViewHours[rk] = map[string]float64{}
			}
			for _, ck := range cols {
				if !colSeen[ck] {
					colSeen[ck] = true
					ct.ColKeys = append(ct.ColKeys, ck)
				}
				ct.ViewHours[rk][ck] += share
			}
		}
	}
	sort.Strings(ct.RowKeys)
	sort.Strings(ct.ColKeys)
	return ct
}

// At returns the absolute view-hours in cell (row, col).
func (ct *CrossTab) At(row, col string) float64 {
	m, ok := ct.ViewHours[row]
	if !ok {
		return 0
	}
	return m[col]
}

// RowShare returns cell (row, col) as a fraction of the row's total —
// e.g. "what fraction of iPhone view-hours used HLS".
func (ct *CrossTab) RowShare(row, col string) float64 {
	m, ok := ct.ViewHours[row]
	if !ok {
		return 0
	}
	total := 0.0
	for _, col := range sortedKeys(m) {
		total += m[col]
	}
	if total == 0 {
		return 0
	}
	return m[col] / total
}

// ColShare returns cell (row, col) as a fraction of the column total.
func (ct *CrossTab) ColShare(row, col string) float64 {
	total := 0.0
	for _, r := range sortedKeys(ct.ViewHours) {
		total += ct.ViewHours[r][col]
	}
	if total == 0 {
		return 0
	}
	return ct.At(row, col) / total
}
