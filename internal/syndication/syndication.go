// Package syndication implements the §6 analyses: the prevalence of
// content syndication (Fig 14), the bitrate-ladder heterogeneity of a
// popular syndicated catalogue (Fig 17), owner-versus-syndicator
// delivery performance measured with real playback sessions (Figs 15
// and 16), and CDN origin-storage redundancy under independent versus
// integrated syndication (Fig 18).
package syndication

import (
	"fmt"
	"sort"

	"vmp/internal/ecosystem"
	"vmp/internal/manifest"
	"vmp/internal/packaging"
	"vmp/internal/stats"
)

// PrevalencePoint is one owner's position in the Fig 14 CDF.
type PrevalencePoint struct {
	Owner   string
	Percent float64 // % of full syndicators carrying this owner's content
}

// Prevalence computes Fig 14 from the population's syndication graph:
// for each content owner, the percentage of full syndicators that
// syndicate its content, plus the empirical CDF over owners.
func Prevalence(pubs []*ecosystem.Publisher) ([]PrevalencePoint, *stats.ECDF) {
	nSynd := 0
	for _, p := range pubs {
		if p.IsSyndicator {
			nSynd++
		}
	}
	var points []PrevalencePoint
	var values []float64
	for _, p := range pubs {
		if p.IsSyndicator {
			continue
		}
		pct := 0.0
		if nSynd > 0 {
			pct = 100 * float64(len(p.SyndicatesTo)) / float64(nSynd)
		}
		points = append(points, PrevalencePoint{Owner: p.ID, Percent: pct})
		values = append(values, pct)
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Percent < points[j].Percent })
	return points, stats.NewECDF(values)
}

// PublisherLadder is one publisher's encoding of a syndicated title.
type PublisherLadder struct {
	ID     string
	Ladder manifest.Ladder
}

// Catalogue describes a syndicated video catalogue: the owner's
// encoding and each syndicator's independent encoding of the same
// content.
type Catalogue struct {
	Name        string
	TitleID     string // representative video ID for the Fig 17 slice
	Owner       PublisherLadder
	Syndicators []PublisherLadder
}

// ladder builds a fully-populated ladder from bare bitrates.
func ladder(kbps ...int) manifest.Ladder {
	out := make(manifest.Ladder, 0, len(kbps))
	for _, k := range kbps {
		out = append(out, packaging.RenditionFor(k))
	}
	return out
}

// StarCatalogue returns the popular catalogue behind Figs 15-17: one
// owner and ten syndicators whose independent packaging choices
// reproduce the heterogeneity of Fig 17 — the owner offers 9 bitrates
// topping 8192 Kbps, S2 encodes just 3, S9 fields 14, and S1's ceiling
// is ~7x below the owner's. S7, the subject of the Fig 15/16
// performance comparison, uses a sparse ladder whose coarse rungs are
// what degrade its clients' delivered quality.
func StarCatalogue() *Catalogue {
	return &Catalogue{
		Name:    "star",
		TitleID: "star-ep01",
		Owner:   PublisherLadder{ID: "O", Ladder: ladder(150, 280, 520, 950, 1700, 3000, 5200, 8192, 10000)},
		Syndicators: []PublisherLadder{
			{ID: "S1", Ladder: ladder(180, 320, 560, 820, 1150)},
			{ID: "S2", Ladder: ladder(400, 1200, 2800)},
			{ID: "S3", Ladder: ladder(160, 350, 700, 1400, 2800, 5000)},
			{ID: "S4", Ladder: ladder(150, 300, 600, 1100, 1900, 3200, 5400, 8000)},
			{ID: "S5", Ladder: ladder(250, 500, 1000, 2000, 4000)},
			{ID: "S6", Ladder: ladder(150, 280, 520, 950, 1700, 3000, 5200)},
			{ID: "S7", Ladder: ladder(350, 900, 2200)},
			{ID: "S8", Ladder: ladder(150, 270, 480, 850, 1500, 2600, 4500, 6500, 8192, 9800)},
			{ID: "S9", Ladder: ladder(120, 200, 320, 480, 700, 1000, 1400, 1900, 2600, 3400, 4400, 5600, 6500, 7500)},
			{ID: "S10", Ladder: ladder(300, 800, 2000, 4500)},
		},
	}
}

// SyndicatorByID returns the catalogue's syndicator with the given ID.
func (c *Catalogue) SyndicatorByID(id string) (PublisherLadder, bool) {
	for _, s := range c.Syndicators {
		if s.ID == id {
			return s, true
		}
	}
	return PublisherLadder{}, false
}

// LadderTable renders the Fig 17 comparison: for the owner and every
// syndicator, the bitrate count, floor, and ceiling.
type LadderRow struct {
	Publisher string
	Bitrates  []int
	Count     int
	MinKbps   int
	MaxKbps   int
}

// LadderTable summarizes the catalogue's ladders in Fig 17 order
// (owner first).
func (c *Catalogue) LadderTable() []LadderRow {
	rows := []LadderRow{ladderRow(c.Owner)}
	for _, s := range c.Syndicators {
		rows = append(rows, ladderRow(s))
	}
	return rows
}

func ladderRow(pl PublisherLadder) LadderRow {
	return LadderRow{
		Publisher: pl.ID,
		Bitrates:  pl.Ladder.Bitrates(),
		Count:     len(pl.Ladder),
		MinKbps:   pl.Ladder.Min(),
		MaxKbps:   pl.Ladder.Max(),
	}
}

// CheckFig17Invariants verifies the catalogue reproduces Fig 17's
// qualitative findings; it returns a descriptive error on violation.
// Tests and the study CLI both run it.
func (c *Catalogue) CheckFig17Invariants() error {
	if n := len(c.Syndicators); n != 10 {
		return fmt.Errorf("syndication: catalogue has %d syndicators, want 10", n)
	}
	if len(c.Owner.Ladder) != 9 {
		return fmt.Errorf("syndication: owner has %d bitrates, want 9", len(c.Owner.Ladder))
	}
	if c.Owner.Ladder.Max() < 8192 {
		return fmt.Errorf("syndication: owner ceiling %d, want > 8192", c.Owner.Ladder.Max())
	}
	s2, _ := c.SyndicatorByID("S2")
	if len(s2.Ladder) != 3 {
		return fmt.Errorf("syndication: S2 has %d bitrates, want 3", len(s2.Ladder))
	}
	s9, _ := c.SyndicatorByID("S9")
	if len(s9.Ladder) != 14 {
		return fmt.Errorf("syndication: S9 has %d bitrates, want 14", len(s9.Ladder))
	}
	s1, _ := c.SyndicatorByID("S1")
	ratio := float64(c.Owner.Ladder.Max()) / float64(s1.Ladder.Max())
	if ratio < 6 || ratio > 9 {
		return fmt.Errorf("syndication: owner/S1 ceiling ratio %.1f, want ~7", ratio)
	}
	if s1.Ladder.Max() < 1024 || s1.Ladder.Max() > 1400 {
		return fmt.Errorf("syndication: S1 ceiling %d, want a little above 1024", s1.Ladder.Max())
	}
	return nil
}
