package syndication

import "testing"

// TestFig17InvariantViolations drives every failure branch of the
// catalogue checker by mutating a valid catalogue.
func TestFig17InvariantViolations(t *testing.T) {
	mutate := []struct {
		name string
		fn   func(c *Catalogue)
	}{
		{"missing syndicator", func(c *Catalogue) { c.Syndicators = c.Syndicators[:9] }},
		{"owner ladder size", func(c *Catalogue) { c.Owner.Ladder = c.Owner.Ladder[:8] }},
		{"owner ceiling", func(c *Catalogue) {
			c.Owner.Ladder = ladder(150, 280, 520, 950, 1700, 3000, 5200, 6000, 8000)
		}},
		{"S2 rung count", func(c *Catalogue) {
			for i := range c.Syndicators {
				if c.Syndicators[i].ID == "S2" {
					c.Syndicators[i].Ladder = ladder(400, 1200, 2800, 5000)
				}
			}
		}},
		{"S9 rung count", func(c *Catalogue) {
			for i := range c.Syndicators {
				if c.Syndicators[i].ID == "S9" {
					c.Syndicators[i].Ladder = c.Syndicators[i].Ladder[:13]
				}
			}
		}},
		{"S1 ceiling ratio", func(c *Catalogue) {
			for i := range c.Syndicators {
				if c.Syndicators[i].ID == "S1" {
					c.Syndicators[i].Ladder = ladder(180, 320, 560, 820, 5000)
				}
			}
		}},
		{"S1 ceiling too high", func(c *Catalogue) {
			// Ratio stays in [6,9] but the ceiling leaves the "a
			// little above 1024" band.
			for i := range c.Syndicators {
				if c.Syndicators[i].ID == "S1" {
					c.Syndicators[i].Ladder = ladder(180, 320, 560, 820, 1500)
				}
			}
		}},
	}
	for _, m := range mutate {
		c := StarCatalogue()
		m.fn(c)
		if err := c.CheckFig17Invariants(); err == nil {
			t.Errorf("%s: violation not detected", m.name)
		}
	}
}

func TestDefaultSlicesShape(t *testing.T) {
	// Covered indirectly elsewhere; here check slice parameters.
	exp, err := RunStorageExperiment(StorageConfig{CatalogueHours: 100, Titles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if exp.Config.Titles != 10 {
		t.Fatal("config not retained")
	}
	// Small catalogues still satisfy the savings ordering.
	r := exp.Reports[0].Report
	if !(r.Integrated >= r.Tol10 && r.Tol10 >= r.Tol5) {
		t.Fatalf("ordering violated on small catalogue: %+v", r)
	}
}
