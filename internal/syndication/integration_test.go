package syndication

import (
	"testing"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/netmodel"
)

func TestIntegrationModelNames(t *testing.T) {
	for m, want := range map[IntegrationModel]string{
		Independent:   "independent",
		APIIntegrated: "API-integrated",
		AppIntegrated: "app-integrated",
	} {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(m), m.String(), want)
		}
	}
	if IntegrationModel(9).String() != "IntegrationModel(9)" {
		t.Error("unknown model should format numerically")
	}
}

func TestEffectiveLadder(t *testing.T) {
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	if got := EffectiveLadder(cat.Owner, s7, Independent); len(got.Ladder) != 3 {
		t.Errorf("independent ladder = %d rungs, want S7's 3", len(got.Ladder))
	}
	for _, m := range []IntegrationModel{APIIntegrated, AppIntegrated} {
		got := EffectiveLadder(cat.Owner, s7, m)
		if len(got.Ladder) != len(cat.Owner.Ladder) {
			t.Errorf("%v ladder = %d rungs, want owner's %d", m, len(got.Ladder), len(cat.Owner.Ladder))
		}
		if got.ID != "S7" {
			t.Errorf("%v should keep the syndicator's identity, got %q", m, got.ID)
		}
	}
}

// TestIntegrationClosesTheQoEGap is §6's claim: with integrated
// syndication, "performance differences similar to Fig 15 are unlikely
// to arise".
func TestIntegrationClosesTheQoEGap(t *testing.T) {
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	cdnA, _ := cdns.ByName("A")
	ispX, _ := netmodel.ISPByName("ISP-X")
	slice := QoESlice{ISP: ispX, Conn: netmodel.Cellular, CDN: cdnA,
		Sessions: 60, WatchSec: 900, Seed: 11}
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")

	owner, _, err := CompareQoE(cat.Owner, cat.Owner, cat.TitleID, slice)
	if err != nil {
		t.Fatal(err)
	}
	indep, err := MeasureIntegration(cat.Owner, s7, cat.TitleID, Independent, slice)
	if err != nil {
		t.Fatal(err)
	}
	api, err := MeasureIntegration(cat.Owner, s7, cat.TitleID, APIIntegrated, slice)
	if err != nil {
		t.Fatal(err)
	}
	app, err := MeasureIntegration(cat.Owner, s7, cat.TitleID, AppIntegrated, slice)
	if err != nil {
		t.Fatal(err)
	}
	// Independent syndication leaves a large bitrate gap.
	if indep.MedianKbps > 0.6*owner.MedianKbps {
		t.Fatalf("independent syndicator median %.0f too close to owner %.0f",
			indep.MedianKbps, owner.MedianKbps)
	}
	// Integrated variants close it.
	for name, d := range map[string]QoEDist{"API": api, "app": app} {
		ratio := d.MedianKbps / owner.MedianKbps
		if ratio < 0.85 || ratio > 1.15 {
			t.Errorf("%s-integrated median %.0f not at parity with owner %.0f",
				name, d.MedianKbps, owner.MedianKbps)
		}
	}
}

func TestMeasureIntegrationValidation(t *testing.T) {
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	if _, err := MeasureIntegration(cat.Owner, s7, cat.TitleID, Independent, QoESlice{}); err == nil {
		t.Fatal("zero slice accepted")
	}
}

func TestStorageUnderModel(t *testing.T) {
	exp, err := RunStorageExperiment(DefaultStorageConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := exp.Reports[0]
	if got := StorageUnderModel(rep, Independent); got != 1 {
		t.Errorf("independent fraction = %v, want 1", got)
	}
	api := StorageUnderModel(rep, APIIntegrated)
	app := StorageUnderModel(rep, AppIntegrated)
	if api != app {
		t.Error("API and app integration should occupy the same storage")
	}
	// Fig 18: integrated removes ~65% → ~0.35 remains.
	if api < 0.28 || api > 0.45 {
		t.Errorf("integrated storage fraction = %v, want ~0.36", api)
	}
	if got := StorageUnderModel(CDNStorageReport{}, APIIntegrated); got != 0 {
		t.Errorf("empty report fraction = %v, want 0", got)
	}
}
