package syndication

import (
	"fmt"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/player"
	"vmp/internal/stats"
)

// QoESlice pins down one Fig 15/16 measurement slice: iPad clients in
// one geography on one ISP, served by one CDN — the paper compares
// (ISP X, CDN A) and (ISP Y, CDN B).
type QoESlice struct {
	ISP      netmodel.ISP
	Conn     netmodel.ConnType
	CDN      *cdnsim.CDN
	Sessions int     // playback sessions per publisher
	WatchSec float64 // intended watch time per session
	Seed     uint64
}

// QoEDist is the measured distribution of delivery performance for one
// publisher's clients on a slice.
type QoEDist struct {
	AvgBitrate  *stats.ECDF // per-session average bitrate, Kbps
	RebufRatio  *stats.ECDF // per-session rebuffering ratio
	MedianKbps  float64
	P90RebufPct float64
}

// CompareQoE plays real adaptive-streaming sessions for the owner's
// and a syndicator's packaging of the same title over the same network
// slice, reproducing the Fig 15/16 methodology: identical device
// class, connection type, geography, ISP, and CDN — the only
// difference is each publisher's independently chosen bitrate ladder.
func CompareQoE(owner, synd PublisherLadder, titleID string, slice QoESlice) (ownerDist, syndDist QoEDist, err error) {
	if slice.Sessions <= 0 {
		return QoEDist{}, QoEDist{}, fmt.Errorf("syndication: non-positive session count")
	}
	if slice.CDN == nil {
		return QoEDist{}, QoEDist{}, fmt.Errorf("syndication: nil CDN")
	}
	root := dist.NewSource(slice.Seed)
	ownerDist, err = measure(owner, titleID, slice, root.Split("owner"))
	if err != nil {
		return
	}
	syndDist, err = measure(synd, titleID, slice, root.Split("synd"))
	return
}

// measure plays slice.Sessions sessions of one publisher's packaging.
func measure(pub PublisherLadder, titleID string, slice QoESlice, src *dist.Source) (QoEDist, error) {
	spec := &manifest.Spec{
		VideoID:     fmt.Sprintf("%s-%s", pub.ID, titleID),
		DurationSec: 2 * slice.WatchSec, // content outlasts the viewer
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      pub.Ladder,
	}
	base := fmt.Sprintf("http://cdn-%s.example.net/%s", slice.CDN.Name, pub.ID)
	text, err := manifest.Generate(manifest.HLS, spec, base)
	if err != nil {
		return QoEDist{}, err
	}
	m, err := manifest.Parse(manifest.ManifestURL(manifest.HLS, base, spec.VideoID), text)
	if err != nil {
		return QoEDist{}, err
	}
	profile := netmodel.PathProfile(slice.ISP, slice.Conn, slice.CDN.Quality(slice.ISP.Name))
	var bitrates, rebufs []float64
	for i := 0; i < slice.Sessions; i++ {
		ssrc := src.Splitf("session", i)
		res, err := player.Play(player.Config{
			Manifest: m,
			ABR:      player.BufferBased{},
			Trace:    profile.NewTrace(ssrc),
			CDN:      slice.CDN,
			ISP:      slice.ISP.Name,
			WatchSec: slice.WatchSec,
		})
		if err != nil {
			return QoEDist{}, fmt.Errorf("syndication: session %d: %w", i, err)
		}
		bitrates = append(bitrates, res.AvgBitrateKbps)
		rebufs = append(rebufs, res.RebufferRatio())
	}
	d := QoEDist{
		AvgBitrate: stats.NewECDF(bitrates),
		RebufRatio: stats.NewECDF(rebufs),
	}
	d.MedianKbps = d.AvgBitrate.MustQuantile(0.5)
	d.P90RebufPct = 100 * d.RebufRatio.MustQuantile(0.9)
	return d, nil
}

// DefaultSlices returns the two ISP×CDN slices of Figs 15 and 16,
// using the given CDN registry.
func DefaultSlices(cdns *cdnsim.Registry, sessions int, seed uint64) ([]QoESlice, error) {
	ispX, ok := netmodel.ISPByName("ISP-X")
	if !ok {
		return nil, fmt.Errorf("syndication: ISP-X not registered")
	}
	ispY, ok := netmodel.ISPByName("ISP-Y")
	if !ok {
		return nil, fmt.Errorf("syndication: ISP-Y not registered")
	}
	cdnA, ok := cdns.ByName("A")
	if !ok {
		return nil, fmt.Errorf("syndication: CDN A not registered")
	}
	cdnB, ok := cdns.ByName("B")
	if !ok {
		return nil, fmt.Errorf("syndication: CDN B not registered")
	}
	// Both slices compare clients on the same connection type (the
	// paper controls for WiFi/4G/Wired); 4G paths exhibit the
	// throughput variability that separates the two publishers'
	// rebuffering distributions in Fig 16.
	return []QoESlice{
		{ISP: ispX, Conn: netmodel.Cellular, CDN: cdnA, Sessions: sessions, WatchSec: 1200, Seed: seed},
		{ISP: ispY, Conn: netmodel.Cellular, CDN: cdnB, Sessions: sessions, WatchSec: 1200, Seed: seed + 1},
	}, nil
}
