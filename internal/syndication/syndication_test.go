package syndication

import (
	"testing"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/ecosystem"
	"vmp/internal/netmodel"
)

func TestPrevalence(t *testing.T) {
	e := ecosystem.New(ecosystem.Config{SnapshotStride: 30})
	points, cdf := Prevalence(e.Publishers)
	if len(points) == 0 || cdf.N() == 0 {
		t.Fatal("empty prevalence analysis")
	}
	// Fig 14: >80% of owners use at least one syndicator.
	zero := cdf.At(0)
	if zero > 0.25 {
		t.Errorf("%.2f of owners use no syndicator, want < 0.20", zero)
	}
	// The top owners reach ~1/3 of full syndicators.
	max, err := cdf.Quantile(1)
	if err != nil {
		t.Fatal(err)
	}
	if max < 30 || max > 45 {
		t.Errorf("max syndicator reach = %.1f%%, want ~33%%", max)
	}
	// Points are sorted ascending.
	for i := 1; i < len(points); i++ {
		if points[i].Percent < points[i-1].Percent {
			t.Fatal("prevalence points not sorted")
		}
	}
}

func TestPrevalenceNoSyndicators(t *testing.T) {
	pubs := []*ecosystem.Publisher{{ID: "solo"}}
	points, cdf := Prevalence(pubs)
	if len(points) != 1 || points[0].Percent != 0 {
		t.Fatalf("points = %+v", points)
	}
	if cdf.At(0) != 1 {
		t.Fatal("owner with no syndicators should sit at 0%")
	}
}

func TestStarCatalogueInvariants(t *testing.T) {
	cat := StarCatalogue()
	if err := cat.CheckFig17Invariants(); err != nil {
		t.Fatal(err)
	}
	rows := cat.LadderTable()
	if len(rows) != 11 {
		t.Fatalf("ladder table rows = %d, want 11 (owner + S1..S10)", len(rows))
	}
	if rows[0].Publisher != "O" || rows[0].Count != 9 {
		t.Fatalf("owner row = %+v", rows[0])
	}
	// Ladder counts must vary widely (Fig 17's heterogeneity).
	min, max := rows[0].Count, rows[0].Count
	for _, r := range rows {
		if r.Count < min {
			min = r.Count
		}
		if r.Count > max {
			max = r.Count
		}
		if r.MinKbps <= 0 || r.MaxKbps < r.MinKbps {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if min != 3 || max != 14 {
		t.Fatalf("ladder count range [%d, %d], want [3, 14]", min, max)
	}
}

func TestSyndicatorByID(t *testing.T) {
	cat := StarCatalogue()
	if _, ok := cat.SyndicatorByID("S7"); !ok {
		t.Fatal("S7 missing")
	}
	if _, ok := cat.SyndicatorByID("S99"); ok {
		t.Fatal("ghost syndicator resolved")
	}
}

func TestStorageExperimentFig18(t *testing.T) {
	exp, err := RunStorageExperiment(DefaultStorageConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Reports) != 2 {
		t.Fatalf("reports for %d CDNs, want 2 (A and B)", len(exp.Reports))
	}
	for _, r := range exp.Reports {
		rep := r.Report
		// Paper: 1916 TB per common CDN.
		tb := float64(rep.TotalBytes) / 1e12
		if tb < 1800 || tb > 2050 {
			t.Errorf("CDN %s total = %.0f TB, want ~1916", r.CDN, tb)
		}
		// Paper: 5%% → 316.1 TB (16.5%%); 10%% → 865 TB (45.2%%);
		// integrated → 1257 TB (65.6%%). Shape bands below.
		if rep.Tol5Pct < 12 || rep.Tol5Pct > 21 {
			t.Errorf("CDN %s 5%% savings = %.1f%%, want ~16.5%%", r.CDN, rep.Tol5Pct)
		}
		if rep.Tol10Pct < 38 || rep.Tol10Pct > 55 {
			t.Errorf("CDN %s 10%% savings = %.1f%%, want ~45%%", r.CDN, rep.Tol10Pct)
		}
		if rep.IntegratedPct < 58 || rep.IntegratedPct > 72 {
			t.Errorf("CDN %s integrated savings = %.1f%%, want ~65.6%%", r.CDN, rep.IntegratedPct)
		}
		// Fig 18 ordering.
		if !(rep.Integrated > rep.Tol10 && rep.Tol10 > rep.Tol5 && rep.Tol5 >= rep.Exact) {
			t.Errorf("CDN %s savings ordering violated: %+v", r.CDN, rep)
		}
	}
	// A and B hold identical copies, so their reports must agree.
	if exp.Reports[0].Report != exp.Reports[1].Report {
		t.Error("CDNs A and B should report identical savings")
	}
}

func TestStorageExperimentBadConfig(t *testing.T) {
	if _, err := RunStorageExperiment(StorageConfig{}); err == nil {
		t.Fatal("zero config accepted")
	}
}

func TestFig18Ladders(t *testing.T) {
	o, s1, s2 := Fig18Ladders()
	if len(o) != 9 || len(s1) != 7 || len(s2) != 14 {
		t.Fatalf("ladder sizes = %d/%d/%d, want 9/7/14", len(o), len(s1), len(s2))
	}
}

func TestCompareQoEOwnerWins(t *testing.T) {
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	slices, err := DefaultSlices(cdns, 60, ecosystem.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	for _, sl := range slices {
		owner, synd, err := CompareQoE(cat.Owner, s7, cat.TitleID, sl)
		if err != nil {
			t.Fatal(err)
		}
		// Fig 15: the owner's clients get better median average
		// bitrate (paper: 2.5x on its slices).
		ratio := owner.MedianKbps / synd.MedianKbps
		if ratio < 1.15 {
			t.Errorf("slice %s/%s: owner/synd median bitrate ratio %.2f, want > 1.15",
				sl.ISP.Name, sl.CDN.Name, ratio)
		}
		// Fig 16: the owner's clients never rebuffer more.
		if owner.P90RebufPct > synd.P90RebufPct+1e-9 {
			t.Errorf("slice %s/%s: owner p90 rebuffering %.2f%% exceeds syndicator %.2f%%",
				sl.ISP.Name, sl.CDN.Name, owner.P90RebufPct, synd.P90RebufPct)
		}
	}
	// At least one slice separates the rebuffering distributions.
	sl := slices[1]
	owner, synd, err := CompareQoE(cat.Owner, s7, cat.TitleID, sl)
	if err != nil {
		t.Fatal(err)
	}
	if synd.P90RebufPct == 0 {
		t.Error("expected rebuffering on the ISP-Y 4G slice")
	}
	if owner.P90RebufPct > 0.7*synd.P90RebufPct {
		t.Errorf("owner p90 rebuf %.2f%% not ≥40%% lower than syndicator %.2f%% (paper: 40%% lower)",
			owner.P90RebufPct, synd.P90RebufPct)
	}
}

func TestCompareQoEBitrateRatioStrongSlice(t *testing.T) {
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	slices, err := DefaultSlices(cdns, 60, ecosystem.DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	owner, synd, err := CompareQoE(cat.Owner, s7, cat.TitleID, slices[0])
	if err != nil {
		t.Fatal(err)
	}
	ratio := owner.MedianKbps / synd.MedianKbps
	if ratio < 2.0 || ratio > 3.6 {
		t.Errorf("ISP-X median ratio = %.2f, want ~2.5 (paper)", ratio)
	}
}

func TestCompareQoEValidation(t *testing.T) {
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	if _, _, err := CompareQoE(cat.Owner, s7, cat.TitleID, QoESlice{}); err == nil {
		t.Fatal("zero slice accepted")
	}
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	a, _ := cdns.ByName("A")
	ispX, _ := netmodel.ISPByName("ISP-X")
	if _, _, err := CompareQoE(cat.Owner, s7, cat.TitleID,
		QoESlice{ISP: ispX, CDN: a, Sessions: 0}); err == nil {
		t.Fatal("zero sessions accepted")
	}
}

func TestCompareQoEDeterminism(t *testing.T) {
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	ispX, _ := netmodel.ISPByName("ISP-X")
	a, _ := cdns.ByName("A")
	sl := QoESlice{ISP: ispX, Conn: netmodel.Cellular, CDN: a, Sessions: 20, WatchSec: 600, Seed: 5}
	cat := StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	o1, s1, err := CompareQoE(cat.Owner, s7, cat.TitleID, sl)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh CDN (edge caches are stateful) for the repeat run.
	cdns2 := cdnsim.NewRegistry(dist.NewSource(1))
	a2, _ := cdns2.ByName("A")
	sl.CDN = a2
	o2, s2, err := CompareQoE(cat.Owner, s7, cat.TitleID, sl)
	if err != nil {
		t.Fatal(err)
	}
	if o1.MedianKbps != o2.MedianKbps || s1.MedianKbps != s2.MedianKbps {
		t.Fatal("QoE comparison not deterministic")
	}
}
