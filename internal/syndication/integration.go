package syndication

import (
	"fmt"

	"vmp/internal/dist"
)

// IntegrationModel is the degree to which a syndicator's management
// plane is integrated with the content owner's (§6).
type IntegrationModel int

const (
	// Independent is today's prevalent model: the owner ships a
	// mezzanine copy and the syndicator packages and distributes it
	// through its own management plane.
	Independent IntegrationModel = iota
	// APIIntegrated has the syndicator use the owner's manifest file
	// and CDN; playback software remains the syndicator's.
	APIIntegrated
	// AppIntegrated embeds the owner's app inside the syndicator's, so
	// packaging, distribution, and playback are all the owner's.
	AppIntegrated
)

// String names the model as §6 does.
func (m IntegrationModel) String() string {
	switch m {
	case Independent:
		return "independent"
	case APIIntegrated:
		return "API-integrated"
	case AppIntegrated:
		return "app-integrated"
	default:
		return fmt.Sprintf("IntegrationModel(%d)", int(m))
	}
}

// EffectiveLadder returns the bitrate ladder a syndicator's clients
// actually play under the model: under either integrated variant the
// syndicator "cannot choose different bitrates than content owners"
// (§6), so the owner's ladder applies.
func EffectiveLadder(owner, synd PublisherLadder, model IntegrationModel) PublisherLadder {
	switch model {
	case APIIntegrated, AppIntegrated:
		return PublisherLadder{ID: synd.ID, Ladder: owner.Ladder}
	default:
		return synd
	}
}

// MeasureIntegration plays the syndicator's clients under the given
// integration model on one network slice and returns their QoE
// distribution: the quantitative version of §6's argument that
// integrated syndication removes the performance differences of Figs
// 15 and 16.
func MeasureIntegration(owner, synd PublisherLadder, titleID string, model IntegrationModel, slice QoESlice) (QoEDist, error) {
	if slice.Sessions <= 0 {
		return QoEDist{}, fmt.Errorf("syndication: non-positive session count")
	}
	if slice.CDN == nil {
		return QoEDist{}, fmt.Errorf("syndication: nil CDN")
	}
	effective := EffectiveLadder(owner, synd, model)
	// Under API/app integration the syndicator's clients fetch the
	// owner's packaged copies: identical manifest (owner's video ID),
	// so they share the owner's cached chunks at the edge.
	if model != Independent {
		effective.ID = owner.ID
	}
	// Deterministic per-(publisher, model) stream, so results are
	// reproducible and comparable across models.
	src := dist.NewSource(slice.Seed).Split("integration-" + synd.ID + "-" + model.String())
	return measure(effective, titleID, slice, src)
}

// StorageUnderModel returns the per-CDN storage a catalogue occupies
// under the model, as a fraction of its independent-syndication
// footprint: 1.0 for independent, and the owner-only share under
// either integrated variant (both variants remove the syndicators'
// copies; they differ in playback control, not storage).
func StorageUnderModel(rep CDNStorageReport, model IntegrationModel) float64 {
	if model == Independent {
		return 1
	}
	total := float64(rep.Report.TotalBytes)
	if total == 0 {
		return 0
	}
	return (total - float64(rep.Report.Integrated)) / total
}
