package syndication

import (
	"fmt"

	"vmp/internal/cdnsim"
	"vmp/internal/manifest"
)

// The Fig 18 experiment: a popular video catalogue served by its owner
// and two syndicators. The owner stores the catalogue on CDNs A and B
// with 9 bitrates; one syndicator on A, B, and C with 7 bitrates; the
// other on A, B, and D with 14. The rung placements below reproduce
// the overlap structure the HLS ladder guidelines induce (§6: "they
// tend to follow guidelines recommended by streaming protocol
// specifications"), which is what makes tolerance-based dedup
// effective.

// storageOwnerLadder etc. are the Fig 18 ladders. Offsets from the
// owner's rungs sit in the 3-5% band (merged at 5% tolerance) or the
// 8-9.5% band (merged only at 10%).
var (
	storageOwnerLadder = []int{150, 280, 520, 950, 1700, 3000, 5200, 8192, 10000}
	storageSynd1Ladder = []int{156, 300, 545, 995, 1780, 3250, 5650}
	storageSynd2Ladder = []int{157, 288, 565, 990, 1850, 3120, 5430, 8900, 10900, 420, 750, 1350, 2350, 4200}
)

// StorageConfig parameterizes the Fig 18 experiment.
type StorageConfig struct {
	// CatalogueHours is the total content duration of the catalogue.
	// The default reproduces the paper's 1916 TB per-CDN footprint.
	CatalogueHours float64
	// Titles splits the catalogue into this many video IDs.
	Titles int
}

// DefaultStorageConfig returns the configuration whose per-CDN
// footprint lands at the paper's 1916 TB.
func DefaultStorageConfig() StorageConfig {
	return StorageConfig{CatalogueHours: 50700, Titles: 600}
}

// CDNStorageReport is the Fig 18 outcome for one CDN.
type CDNStorageReport struct {
	CDN    string
	Report cdnsim.SavingsReport
}

// StorageExperiment holds the populated origins and results.
type StorageExperiment struct {
	Config  StorageConfig
	Reports []CDNStorageReport // CDNs A and B (the common ones)
}

// RunStorageExperiment populates fresh origin stores for CDNs A-D with
// the three publishers' copies of the catalogue and computes savings
// under exact, 5%, 10%, and integrated dedup for the two common CDNs.
func RunStorageExperiment(cfg StorageConfig) (*StorageExperiment, error) {
	if cfg.CatalogueHours <= 0 || cfg.Titles <= 0 {
		return nil, fmt.Errorf("syndication: invalid storage config %+v", cfg)
	}
	origins := map[string]*cdnsim.Origin{
		"A": cdnsim.NewOrigin(), "B": cdnsim.NewOrigin(),
		"C": cdnsim.NewOrigin(), "D": cdnsim.NewOrigin(),
	}
	pubs := []struct {
		id     string
		ladder []int
		cdns   []string
	}{
		{"O18", storageOwnerLadder, []string{"A", "B"}},
		{"SY1", storageSynd1Ladder, []string{"A", "B", "C"}},
		{"SY2", storageSynd2Ladder, []string{"A", "B", "D"}},
	}
	perTitleSec := cfg.CatalogueHours * 3600 / float64(cfg.Titles)
	ownerOf := make(map[string]string, cfg.Titles)
	for t := 0; t < cfg.Titles; t++ {
		contentID := fmt.Sprintf("cat18-%04d", t)
		ownerOf[contentID] = "O18"
		for _, pub := range pubs {
			bytesByBitrate := make(map[int]int64, len(pub.ladder))
			for _, kbps := range pub.ladder {
				// §6 storage model: bitrate × duration.
				bytesByBitrate[kbps] = int64(float64(kbps) * 1000 * perTitleSec / 8)
			}
			for _, cdn := range pub.cdns {
				origins[cdn].Push(pub.id, contentID, bytesByBitrate)
			}
		}
	}
	exp := &StorageExperiment{Config: cfg}
	for _, cdn := range []string{"A", "B"} {
		exp.Reports = append(exp.Reports, CDNStorageReport{
			CDN:    cdn,
			Report: origins[cdn].Savings(ownerOf),
		})
	}
	return exp, nil
}

// Fig18Ladders exposes the three ladders as manifest.Ladder values for
// documentation and rendering.
func Fig18Ladders() (owner, synd1, synd2 manifest.Ladder) {
	return ladder(storageOwnerLadder...), ladder(storageSynd1Ladder...), ladder(storageSynd2Ladder...)
}
