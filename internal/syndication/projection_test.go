package syndication

import (
	"testing"

	"vmp/internal/ecosystem"
)

func TestProjectIntegration(t *testing.T) {
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	proj, err := ProjectIntegration(eco, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if len(proj.Owners) == 0 {
		t.Fatal("no syndicating owners projected")
	}
	if proj.TotalRedundantGB <= 0 || proj.TotalOwnerGB <= 0 {
		t.Fatalf("degenerate totals: %+v", proj)
	}
	// Fig 14: >80% of owners syndicate, so the projection must cover a
	// large share of the non-syndicator population.
	owners := 0
	for _, p := range eco.Publishers {
		if !p.IsSyndicator {
			owners++
		}
	}
	if frac := float64(len(proj.Owners)) / float64(owners); frac < 0.7 {
		t.Fatalf("projection covers %.2f of owners, want > 0.7", frac)
	}
	// Sorted by redundant bytes, descending.
	for i := 1; i < len(proj.Owners); i++ {
		if proj.Owners[i].RedundantGB > proj.Owners[i-1].RedundantGB {
			t.Fatal("owners not sorted by redundancy")
		}
	}
	// Per-owner sanity: redundancy scales with syndicator fan-out. A
	// small owner syndicated by large publishers can exceed 1x per
	// syndicator (their ladders are taller than its own), but never by
	// more than the ladder-height ratio.
	for _, op := range proj.Owners {
		if op.Syndicators <= 0 || op.CatalogueGB <= 0 {
			t.Fatalf("degenerate owner projection %+v", op)
		}
		if op.RedundancyMult > 3*float64(op.Syndicators) {
			t.Fatalf("%s redundancy %.1fx implausible for %d syndicators", op.Owner, op.RedundancyMult, op.Syndicators)
		}
	}
}

func TestProjectIntegrationDeterministic(t *testing.T) {
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	a, err := ProjectIntegration(eco, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ProjectIntegration(eco, 0.35)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalRedundantGB != b.TotalRedundantGB {
		t.Fatal("projection not deterministic")
	}
}

func TestProjectIntegrationValidation(t *testing.T) {
	if _, err := ProjectIntegration(nil, 0.35); err == nil {
		t.Fatal("nil ecosystem accepted")
	}
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	// Out-of-range share falls back to the default rather than erroring.
	proj, err := ProjectIntegration(eco, -1)
	if err != nil || proj.TotalRedundantGB <= 0 {
		t.Fatalf("share fallback failed: %v %v", proj, err)
	}
	full, err := ProjectIntegration(eco, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.TotalRedundantGB <= proj.TotalRedundantGB {
		t.Fatal("full syndication should be more redundant than partial")
	}
}
