package syndication

import (
	"fmt"
	"sort"

	"vmp/internal/dist"
	"vmp/internal/ecosystem"
	"vmp/internal/packaging"
)

// Population-wide integrated-syndication projection: §8 closes by
// asking future work to "explore mechanisms for integrated
// syndication". The Fig 18 experiment quantifies one catalogue; this
// file scales the question to the whole population — if every
// syndication relationship in the ecosystem moved to the integrated
// model, how much origin storage would each syndicator's copies stop
// consuming?

// OwnerProjection is the projected saving for one content owner's
// syndicated catalogue.
type OwnerProjection struct {
	Owner          string
	Syndicators    int
	CatalogueGB    float64 // owner's own copy, per CDN
	RedundantGB    float64 // syndicators' copies removed by integration
	RedundancyMult float64 // redundant bytes as a multiple of the owner's copy
}

// PopulationProjection aggregates the projection across the ecosystem.
type PopulationProjection struct {
	Owners           []OwnerProjection // sorted by RedundantGB descending
	TotalOwnerGB     float64
	TotalRedundantGB float64
}

// ProjectIntegration computes the population projection from the
// ecosystem's syndication graph. Each syndicator re-encodes the
// owner's catalogue with its own ladder (per-title perturbation of the
// guideline ladder, as the sampler does), so redundant bytes follow
// from the graph's fan-out and the syndicators' ladder choices.
// syndShare is the fraction of an owner's catalogue its syndicators
// actually carry (full syndication = 1); the default 0.35 reflects
// partial catalogue licensing.
func ProjectIntegration(eco *ecosystem.Ecosystem, syndShare float64) (*PopulationProjection, error) {
	if eco == nil {
		return nil, fmt.Errorf("syndication: nil ecosystem")
	}
	if syndShare <= 0 || syndShare > 1 {
		syndShare = 0.35
	}
	src := dist.NewSource(ecosystem.DefaultSeed).Split("integration-projection")
	proj := &PopulationProjection{}
	for _, owner := range eco.Publishers {
		if owner.IsSyndicator || len(owner.SyndicatesTo) == 0 {
			continue
		}
		// Owner's catalogue bytes: Σ ladder bitrates × catalogue hours.
		ownerLadder := packaging.PerTitleLadder(src.Split("owner-"+owner.ID), 1200+1400*int(owner.Bucket), 1)
		hours := float64(owner.CatalogSize) * owner.MeanVideoHours
		ownerGB := ladderGB(ownerLadder.Bitrates(), hours)
		op := OwnerProjection{
			Owner:       owner.ID,
			Syndicators: len(owner.SyndicatesTo),
			CatalogueGB: ownerGB,
		}
		for _, sid := range owner.SyndicatesTo {
			s, ok := eco.PublisherByID(sid)
			if !ok {
				return nil, fmt.Errorf("syndication: graph references unknown publisher %s", sid)
			}
			sLadder := packaging.PerTitleLadder(src.Split("synd-"+sid+"-"+owner.ID), 1200+1400*int(s.Bucket), 1)
			op.RedundantGB += ladderGB(sLadder.Bitrates(), hours*syndShare)
		}
		if ownerGB > 0 {
			op.RedundancyMult = op.RedundantGB / ownerGB
		}
		proj.Owners = append(proj.Owners, op)
		proj.TotalOwnerGB += ownerGB
		proj.TotalRedundantGB += op.RedundantGB
	}
	sort.Slice(proj.Owners, func(i, j int) bool {
		if proj.Owners[i].RedundantGB != proj.Owners[j].RedundantGB {
			return proj.Owners[i].RedundantGB > proj.Owners[j].RedundantGB
		}
		return proj.Owners[i].Owner < proj.Owners[j].Owner
	})
	return proj, nil
}

// ladderGB converts a bitrate ladder and content hours to gigabytes.
func ladderGB(bitratesKbps []int, hours float64) float64 {
	sum := 0
	for _, k := range bitratesKbps {
		sum += k
	}
	return float64(sum) * 1000 / 8 * hours * 3600 / 1e9
}
