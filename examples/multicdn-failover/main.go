// Multi-CDN failover: drive the CDN broker the way §2 and §4.3
// describe publishers using one — weighted selection across CDNs,
// live/VoD segregation, and rerouting around a degraded CDN — with
// real playback sessions measuring the effect.
//
//	go run ./examples/multicdn-failover
package main

import (
	"fmt"
	"log"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
	"vmp/internal/player"
	"vmp/internal/stats"
)

func main() {
	cdns := cdnsim.NewRegistry(dist.NewSource(7))
	a, _ := cdns.ByName("A")
	b, _ := cdns.ByName("B")
	c, _ := cdns.ByName("C")
	isp, _ := netmodel.ISPByName("ISP-Z")

	// A publisher with three CDNs: A and B share VoD; C is reserved
	// for live traffic (the §4.3 segregation pattern).
	assignments := []cdnsim.Assignment{
		{CDN: a, Weight: 2},
		{CDN: b, Weight: 1},
		{CDN: c, Weight: 1, LiveOnly: true},
	}

	spec := &manifest.Spec{
		VideoID:     "failover-demo",
		DurationSec: 1800,
		ChunkSec:    4,
		AudioKbps:   96,
		Ladder:      packaging.GuidelineLadder(6000, 1.8),
	}

	fmt.Println("== multi-CDN broker demo ==")
	run := func(title string, assigns []cdnsim.Assignment, live bool, seed uint64, monitor *cdnsim.Monitor) {
		var broker cdnsim.Broker
		root := dist.NewSource(seed)
		perCDN := map[string][]float64{}
		for i := 0; i < 120; i++ {
			src := root.Splitf("session", i)
			cdn := broker.SelectAdaptive(assigns, live, src.Split("pick"), monitor)
			if cdn == nil {
				log.Fatal("no eligible CDN — broker misconfiguration")
			}
			base := fmt.Sprintf("http://cdn-%s.example.net/demo", cdn.Name)
			text, err := manifest.Generate(manifest.HLS, spec, base)
			if err != nil {
				log.Fatal(err)
			}
			m, err := manifest.Parse(manifest.ManifestURL(manifest.HLS, base, spec.VideoID), text)
			if err != nil {
				log.Fatal(err)
			}
			profile := netmodel.PathProfile(isp, netmodel.WiFi, cdn.Quality(isp.Name))
			res, err := player.Play(player.Config{
				Manifest: m,
				ABR:      player.BufferBased{},
				Trace:    profile.NewTrace(src.Split("net")),
				CDN:      cdn,
				ISP:      isp.Name,
				WatchSec: 600,
			})
			if err != nil {
				log.Fatal(err)
			}
			perCDN[cdn.Name] = append(perCDN[cdn.Name], res.AvgBitrateKbps)
			if monitor != nil {
				monitor.Record(cdn.Name, res.AvgBitrateKbps)
			}
		}
		fmt.Printf("\n%s (120 sessions, live=%v):\n", title, live)
		for _, name := range []string{"A", "B", "C"} {
			xs := perCDN[name]
			if len(xs) == 0 {
				fmt.Printf("  CDN %s:  (no sessions)\n", name)
				continue
			}
			e := stats.NewECDF(xs)
			fmt.Printf("  CDN %s: %3d sessions, median bitrate %5.0f Kbps\n",
				name, len(xs), e.MustQuantile(0.5))
		}
	}

	run("VoD traffic, all CDNs healthy", assignments, false, 1, nil)
	run("live traffic (C is live-only)", assignments, true, 2, nil)

	// CDN A suffers a peering incident toward this ISP: quality
	// collapses. First, what a static broker does about it: nothing.
	a.SetQuality(isp.Name, 0.2)
	run("VoD after CDN A degrades (static broker)", assignments, false, 3, nil)

	// A monitoring broker (the §2 "monitoring and fault isolation"
	// service) notices and shifts traffic away automatically.
	monitor := cdnsim.NewMonitor(0.3)
	run("VoD after CDN A degrades (adaptive broker)", assignments, false, 4, monitor)
	fmt.Println("\n  broker monitor ranking after the adaptive run:", monitor.Ranked())

	// Finally the operator fails A out of the rotation entirely.
	failedOver := []cdnsim.Assignment{
		{CDN: b, Weight: 2},
		{CDN: c, Weight: 1, LiveOnly: true},
	}
	run("VoD after failing A out of rotation", failedOver, false, 5, nil)
}
