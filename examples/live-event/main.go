// Live event: a flash crowd joins a live stream. Every viewer requests
// the same freshly produced segments, so the CDN edge absorbs almost
// the whole audience — origin traffic stays flat as the crowd grows,
// which is why live distribution leans on CDNs (§4.3) despite the
// latency cost of chunked HTTP (§4.1).
//
//	go run ./examples/live-event
package main

import (
	"fmt"
	"log"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
	"vmp/internal/player"
)

func main() {
	spec := &manifest.Spec{
		VideoID:   "cup-final",
		ChunkSec:  4,
		Live:      true,
		AudioKbps: 96,
		Ladder:    packaging.GuidelineLadder(5000, 1.8),
	}
	lat, err := packaging.GlassToGlass(*spec, packaging.SelfHosted, 2, 0.04)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== live event: flash crowd on one CDN edge ==")
	fmt.Printf("stream: %d renditions, 4s chunks; glass-to-glass %s\n\n", len(spec.Ladder), lat)

	isp, _ := netmodel.ISPByName("ISP-X")
	for _, audience := range []int{10, 50, 200} {
		cdn := cdnsim.NewCDN("A", false, true, 8<<30) // fresh edge per run
		base := "http://cdn-A.example.net/sports"
		text, err := manifest.Generate(manifest.HLS, spec, base)
		if err != nil {
			log.Fatal(err)
		}
		m, err := manifest.Parse(manifest.ManifestURL(manifest.HLS, base, spec.VideoID), text)
		if err != nil {
			log.Fatal(err)
		}
		profile := netmodel.PathProfile(isp, netmodel.WiFi, cdn.Quality(isp.Name))
		root := dist.NewSource(7)
		var rebufSum float64
		for v := 0; v < audience; v++ {
			res, err := player.Play(player.Config{
				Manifest: m,
				ABR:      player.BufferBased{},
				Trace:    profile.NewTrace(root.Splitf("viewer", v)),
				CDN:      cdn,
				ISP:      isp.Name,
				WatchSec: 300,
			})
			if err != nil {
				log.Fatal(err)
			}
			rebufSum += res.RebufferRatio()
		}
		edge := cdn.Edge(isp.Name)
		hits, misses := edge.Stats()
		fmt.Printf("audience %4d: edge hit ratio %5.1f%%, origin fetches %5d, mean rebuffering %.2f%%\n",
			audience, 100*edge.HitRatio(), misses, 100*rebufSum/float64(audience))
		_ = hits
	}
	fmt.Println("\norigin fetches track the segment production rate, not the audience:")
	fmt.Println("each fresh live segment is pulled through once and then served from the edge.")
}
