// Failure triage: the §5 task that motivates the management-plane
// combinations metric. Inject faults into the synthetic population's
// view records — a whole-CDN outage and the paper's own example, a
// Chromecast×SmoothStreaming×CDN triple interaction — then let the
// triager localize them by aggregating failure reports across every
// management-plane combination.
//
//	go run ./examples/failure-triage
package main

import (
	"fmt"
	"log"

	"vmp/internal/dist"
	"vmp/internal/ecosystem"
	"vmp/internal/triage"
)

func main() {
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	recs := eco.GenerateSnapshot(eco.Schedule.Latest())
	fmt.Printf("== failure triage over %d sampled views ==\n\n", len(recs))

	faults := []triage.Fault{
		// A triple interaction in the spirit of the paper's example
		// ("a failure caused by the interaction between a Chromecast
		// implementation using SmoothStreaming on a specific CDN"):
		// here, CDN A's DASH packaging breaks Roku playback.
		{Match: triage.Combination{CDN: "A", Protocol: "DASH", Device: "Roku"}, FailProb: 0.65},
		// And a whole CDN having a bad day.
		{Match: triage.Combination{CDN: "E"}, FailProb: 0.35},
	}
	inj, err := triage.NewInjector(0.012, dist.NewSource(99), faults...)
	if err != nil {
		log.Fatal(err)
	}
	failed := inj.Apply(recs)
	fmt.Printf("injected faults: %d of %d views failed (base rate 1.2%%)\n", failed, len(recs))
	for _, f := range faults {
		fmt.Printf("  ground truth: %v fails at %.0f%%\n", f.Match, 100*f.FailProb)
	}
	fmt.Println()

	findings, triager, err := triage.Run(recs, triage.Config{MinSupport: 30})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("triager aggregated %d management-plane combinations (baseline failure rate %.2f%%)\n\n",
		triager.CombinationsTracked(), 100*triager.BaselineRate())
	if len(findings) == 0 {
		fmt.Println("no anomalies found")
		return
	}
	fmt.Println("localized root causes (most anomalous first):")
	for _, f := range findings {
		fmt.Printf("  %-48s rate %5.1f%%  lift %5.1fx  (%d of %d views)\n",
			f.Combination, 100*f.FailureRate, f.LiftOverBaseline, f.Failures, f.Views)
	}
	fmt.Println()
	fmt.Println("note how the interaction bug is reported as the full triple — neither")
	fmt.Println("the device, the protocol, nor the CDN is anomalous on its own, which is")
	fmt.Println("exactly why triaging cost scales with the combination count (§5).")
}
