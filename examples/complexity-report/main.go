// Complexity report: the §5 scorecard — evaluate every publisher's
// management-plane complexity (failure-triaging combinations,
// packaging load, SDK maintenance burden) and show how each metric
// scales with publisher size.
//
//	go run ./examples/complexity-report
package main

import (
	"fmt"
	"log"
	"sort"

	"vmp/internal/complexity"
	"vmp/internal/ecosystem"
)

func main() {
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 8})
	if err := eco.Validate(); err != nil {
		log.Fatal(err)
	}
	latest := eco.Schedule.Latest().Start
	invs := eco.InventoryAt(latest)

	rep, err := complexity.Analyze(invs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== management-plane complexity scorecard (latest snapshot) ==")
	fmt.Println()
	for _, c := range []complexity.Correlation{rep.Combinations, rep.ProtocolTitles, rep.UniqueSDKs} {
		fmt.Printf("%-32s grows %.2fx per 10x view-hours (R²=%.2f, p=%.1e)\n",
			c.Metric.String(), c.PerDecadeFactor, c.Fit.R2, c.Fit.PValue)
	}
	fmt.Printf("%-32s %d code bases at the largest publisher (paper: up to 85)\n",
		"peak SDK-version burden:", int(rep.MaxUniqueSDKs))
	fmt.Println()

	// Per-publisher scorecard for the five largest and five smallest.
	sort.Slice(invs, func(i, j int) bool { return invs[i].DailyVH > invs[j].DailyVH })
	fmt.Println("publisher scorecards (top 5 and bottom 5 by view-hours):")
	fmt.Printf("  %-8s %12s %6s %5s %8s %6s %8s\n",
		"pub", "daily VH", "protos", "CDNs", "devices", "SDKs", "combos")
	show := append(append([]ecosystem.Inventory{}, invs[:5]...), invs[len(invs)-5:]...)
	for _, inv := range show {
		fmt.Printf("  %-8s %12.1f %6d %5d %8d %6d %8.0f\n",
			inv.Publisher, inv.DailyVH,
			len(inv.Protocols), len(inv.CDNs), len(inv.DeviceModels),
			len(inv.SDKVersions), complexity.Combinations.Of(inv))
	}
	fmt.Println()
	fmt.Println("reading: complexity is sub-linear in size — a 10x bigger publisher")
	fmt.Println("carries well under 10x the complexity, but even small publishers")
	fmt.Println("operate multi-protocol, multi-device management planes (§5's")
	fmt.Println("barrier-to-entry observation).")
}
