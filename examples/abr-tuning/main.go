// ABR tuning: §1 motivates studying the management plane partly by
// "the effort needed to incorporate control plane innovations such as
// new bitrate selection algorithms". This example incorporates one —
// an Oboe-style auto-tuner (Akhtar et al., SIGCOMM 2018, the paper's
// reference [48]) — and compares it against the fixed ABR defaults
// across heterogeneous network paths.
//
//	go run ./examples/abr-tuning
package main

import (
	"fmt"
	"log"

	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
	"vmp/internal/player"
	"vmp/internal/stats"
)

func main() {
	ladder := packaging.GuidelineLadder(8000, 1.8)
	fmt.Println("== ABR auto-tuning across heterogeneous paths ==")
	fmt.Print("building the offline tuning table... ")
	table, err := player.BuildOboeTable(ladder, 4, dist.NewSource(2024))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done (%d network states)\n\n", len(table.States()))

	spec := &manifest.Spec{
		VideoID: "tune-demo", DurationSec: 1200, ChunkSec: 4, AudioKbps: 96, Ladder: ladder,
	}
	text, err := manifest.Generate(manifest.HLS, spec, "http://cdn/demo")
	if err != nil {
		log.Fatal(err)
	}
	m, err := manifest.Parse("http://cdn/demo/tune-demo.m3u8", text)
	if err != nil {
		log.Fatal(err)
	}

	paths := []struct {
		name string
		prof netmodel.Profile
	}{
		{"volatile 4G (1.5 Mbps, high variance)", netmodel.Profile{MeanKbps: 1500, Sigma: 0.65, Rho: 0.85, RTTms: 55}},
		{"stable cable (7 Mbps)", netmodel.Profile{MeanKbps: 7000, Sigma: 0.25, Rho: 0.85, RTTms: 20}},
		{"fast but bursty fiber (16 Mbps)", netmodel.Profile{MeanKbps: 16000, Sigma: 0.65, Rho: 0.85, RTTms: 12}},
	}
	abrs := []struct {
		name string
		mk   func() player.ABR
	}{
		{"buffer (default)", func() player.ABR { return player.BufferBased{} }},
		{"buffer (mis-tuned)", func() player.ABR { return player.BufferBased{ReservoirSec: 1, CushionSec: 8} }},
		{"rate", func() player.ABR { return player.RateBased{} }},
		{"bola", func() player.ABR { return player.BOLA{} }},
		{"oboe (auto-tuned)", func() player.ABR { return &player.AutoTuned{Table: table} }},
	}
	const sessions = 40
	for _, path := range paths {
		fmt.Println(path.name + ":")
		for _, abr := range abrs {
			var kbps, rebuf []float64
			for k := 0; k < sessions; k++ {
				res, err := player.Play(player.Config{
					Manifest: m,
					ABR:      abr.mk(),
					Trace:    path.prof.NewTrace(dist.NewSource(uint64(1000 + k))),
					WatchSec: 500,
				})
				if err != nil {
					log.Fatal(err)
				}
				kbps = append(kbps, res.AvgBitrateKbps)
				rebuf = append(rebuf, 100*res.RebufferRatio())
			}
			eK := stats.NewECDF(kbps)
			eR := stats.NewECDF(rebuf)
			fmt.Printf("  %-18s median %5.0f Kbps, p90 rebuffering %5.2f%%\n",
				abr.name, eK.MustQuantile(0.5), eR.MustQuantile(0.9))
		}
		fmt.Println()
	}
	fmt.Println("reading: a well-chosen fixed configuration is competitive, but a badly")
	fmt.Println("chosen one hurts on volatile paths; the auto-tuner removes that risk at")
	fmt.Println("the cost of one more management-plane component to build, ship to every")
	fmt.Println("device SDK, and keep tuned (§5's software-maintenance complexity).")
}
