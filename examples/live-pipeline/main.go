// Live pipeline: run the telemetry path end-to-end over real HTTP —
// the Conviva-style architecture of §3. A collector backend listens on
// localhost; publisher-side monitoring sensors batch and POST view
// records to it; the analysis layer then characterizes the management
// plane from what actually arrived on the wire.
//
//	go run ./examples/live-pipeline
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"vmp/internal/analytics"
	"vmp/internal/ecosystem"
	"vmp/internal/manifest"
	"vmp/internal/telemetry"
)

func main() {
	// 1. Start the collector backend on an ephemeral local port.
	collector := telemetry.NewCollector(nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: collector.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	defer srv.Close()
	endpoint := fmt.Sprintf("http://%s/v1/views", ln.Addr())
	fmt.Println("collector listening at", endpoint)

	// 2. Generate one snapshot of views and report them through
	// per-publisher sensors, exactly as embedded monitoring libraries
	// would.
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	snap := eco.Schedule.Latest()
	sensors := map[string]*telemetry.Sensor{}
	reported := 0
	for _, rec := range eco.GenerateSnapshot(snap) {
		sensor := sensors[rec.Publisher]
		if sensor == nil {
			sensor = telemetry.NewSensor(endpoint, http.DefaultClient, 200)
			sensors[rec.Publisher] = sensor
		}
		if err := sensor.Report(rec); err != nil {
			log.Fatal(err)
		}
		reported++
	}
	for _, sensor := range sensors {
		if err := sensor.Flush(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("reported %d view records from %d publishers' sensors\n", reported, len(sensors))

	// 3. Analyze what the backend actually stored.
	store := collector.Store()
	fmt.Printf("collector stored %d records (%.0f view-hours represented)\n\n",
		store.Len(), store.TotalViewHours())

	recs := store.Window(snap)
	h := analytics.InstancesPerPublisher(recs, analytics.ProtocolDim)
	fmt.Println("protocols per publisher (from wire-delivered records):")
	for i, n := range h.Counts {
		fmt.Printf("  %d protocol(s): %5.1f%% of publishers, %5.1f%% of view-hours\n",
			n, h.PubPct[i], h.VHPct[i])
	}

	fmt.Println("\nview-hour share by protocol:")
	total := 0.0
	byProto := map[string]float64{}
	for i := range recs {
		vh := recs[i].ViewHours()
		total += vh
		byProto[manifest.InferProtocol(recs[i].URL).String()] += vh
	}
	for _, p := range []string{"HLS", "DASH", "SmoothStreaming", "HDS"} {
		fmt.Printf("  %-16s %5.1f%%\n", p, 100*byProto[p]/total)
	}
}
