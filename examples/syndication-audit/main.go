// Syndication audit: the §6 workflow a content owner would run against
// its syndicators — compare each syndicator's packaging of a catalogue
// title with the owner's, measure the delivery-quality gap with real
// playback sessions, and quantify the CDN storage the independent
// copies waste.
//
//	go run ./examples/syndication-audit
package main

import (
	"fmt"
	"log"

	"vmp/internal/cdnsim"
	"vmp/internal/dist"
	"vmp/internal/ecosystem"
	"vmp/internal/netmodel"
	"vmp/internal/syndication"
)

func main() {
	cat := syndication.StarCatalogue()
	if err := cat.CheckFig17Invariants(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== syndication audit: catalogue %q, owner %s, %d syndicators ==\n\n",
		cat.Name, cat.Owner.ID, len(cat.Syndicators))

	// 1. Packaging divergence (Fig 17).
	fmt.Println("packaging divergence for title", cat.TitleID)
	for _, row := range cat.LadderTable() {
		fmt.Printf("  %-4s %2d renditions, ceiling %5d Kbps\n", row.Publisher, row.Count, row.MaxKbps)
	}
	fmt.Println()

	// 2. Delivery-quality gap, measured by playing real sessions on
	// one network slice (Figs 15/16).
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	cdnA, _ := cdns.ByName("A")
	ispX, _ := netmodel.ISPByName("ISP-X")
	slice := syndication.QoESlice{
		ISP: ispX, Conn: netmodel.Cellular, CDN: cdnA,
		Sessions: 80, WatchSec: 900, Seed: 42,
	}
	fmt.Printf("delivery quality on %s/4G via CDN %s (80 sessions each):\n", ispX.Name, cdnA.Name)
	owner, _, err := syndication.CompareQoE(cat.Owner, cat.Owner, cat.TitleID, slice)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-4s median %5.0f Kbps, p90 rebuffering %4.2f%%  (baseline)\n",
		cat.Owner.ID, owner.MedianKbps, owner.P90RebufPct)
	for _, synd := range cat.Syndicators {
		_, dist, err := syndication.CompareQoE(cat.Owner, synd, cat.TitleID, slice)
		if err != nil {
			log.Fatal(err)
		}
		gap := 100 * (1 - dist.MedianKbps/owner.MedianKbps)
		fmt.Printf("  %-4s median %5.0f Kbps, p90 rebuffering %4.2f%%  (%.0f%% below owner)\n",
			synd.ID, dist.MedianKbps, dist.P90RebufPct, gap)
	}
	fmt.Println()

	// 3. Redundant origin storage (Fig 18).
	exp, err := syndication.RunStorageExperiment(syndication.DefaultStorageConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("origin storage wasted by independent syndication:")
	for _, r := range exp.Reports {
		fmt.Printf("  CDN %s: %.0f TB stored; dedup at 5%%/10%% tolerance reclaims %.0f/%.0f TB; "+
			"integrated syndication reclaims %.0f TB (%.1f%%)\n",
			r.CDN, float64(r.Report.TotalBytes)/1e12,
			float64(r.Report.Tol5)/1e12, float64(r.Report.Tol10)/1e12,
			float64(r.Report.Integrated)/1e12, r.Report.IntegratedPct)
	}
	fmt.Println()

	// 4. Population-wide projection (§8's future-work question): what
	// would integrated syndication reclaim across every syndication
	// relationship in the ecosystem?
	eco := ecosystem.New(ecosystem.Config{SnapshotStride: 59})
	proj, err := syndication.ProjectIntegration(eco, 0.35)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population projection: %d syndicating owners; integrating all of them\n", len(proj.Owners))
	fmt.Printf("would reclaim %.1f TB of syndicator copies per CDN (%.1fx the owners' own %.1f TB)\n",
		proj.TotalRedundantGB/1000, proj.TotalRedundantGB/proj.TotalOwnerGB, proj.TotalOwnerGB/1000)
	fmt.Println("worst offenders:")
	for _, op := range proj.Owners[:3] {
		fmt.Printf("  %s: %d syndicators hold %.1f TB of re-encoded copies (%.1fx its catalogue)\n",
			op.Owner, op.Syndicators, op.RedundantGB/1000, op.RedundancyMult)
	}
}
