// Quickstart: build the synthetic study and render a handful of the
// paper's headline results through the public vmp API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"vmp"
)

func main() {
	// Stride 6 thins the bi-weekly schedule (~10 snapshots instead of
	// 59) so the quickstart finishes in a couple of seconds; drop it
	// for the full 27-month study.
	study := vmp.New(vmp.Config{SnapshotStride: 6, QoESessions: 60})

	fmt.Println("== Understanding Video Management Planes: reproduction quickstart ==")
	fmt.Println()
	for _, id := range []string{"tab1", "2b", "6a", "11b", "13a", "18"} {
		if err := study.Render(os.Stdout, id); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}
	fmt.Printf("dataset: %d sampled view records, %.0f view-hours represented\n",
		study.Store().Len(), study.Store().TotalViewHours())
	fmt.Println("run `vmpstudy -figure all` for every table and figure")
}
