GO ?= go

# Tier-1 verification: build, full test suite, formatting, vet, the
# project's own invariant analyzers, and the race detector across the
# whole module.
.PHONY: verify
verify: build test fmt-check vet lint race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: vet
vet:
	$(GO) vet ./...

# lint runs the in-repo analyzer suite (cmd/vmplint): nondeterminism,
# maporder, frozenwrite, lockdiscipline, errcheck, atomicdiscipline,
# goroutinelifecycle, chandiscipline, ctxflow, bufalias, hotalloc,
# httpdiscipline, fsyncdiscipline, lockorder. It must stay clean —
# these are the machine-checked contracts behind byte-identical
# figures, the race-free serving plane, the zero-copy wire path, and
# the WAL's crash durability. Analysis is whole-program (per-package
# summaries flow along the import DAG) and incremental: -cache keys
# each package on its file contents, its dependencies' summaries, and
# the lint suite's own sources, so warm runs are subsecond and
# byte-identical to cold ones. The second invocation folds test files
# in for the determinism and dataflow analyzers: test expectations must
# not depend on the wall clock or map iteration order, and test helpers
# must keep the same buffer-reuse, handler, durability, and lock-order
# contracts.
.PHONY: lint
lint:
	$(GO) run ./cmd/vmplint -cache ./...
	$(GO) run ./cmd/vmplint -cache -tests -only nondeterminism,maporder,bufalias,hotalloc,httpdiscipline,fsyncdiscipline,lockorder ./...

.PHONY: race
race:
	$(GO) test -race ./...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench BenchmarkFullStudy -benchtime 5x .

.PHONY: bench-live
bench-live:
	$(GO) test -run xxx -bench 'BenchmarkLiveIngest|BenchmarkQueryUnderIngest' -benchmem ./internal/live/

# bench-obs compares ingest throughput with the tracer disabled vs
# enabled vs the full self-measurement plane (sampler + series ring)
# live; the deltas are recorded in BENCH_obs.json. The disabled run
# must stay within a few percent of BENCH_live_ingest.json's baseline —
# instrumentation is supposed to be free until a daemon opts in.
.PHONY: bench-obs
bench-obs:
	$(GO) test -run xxx -bench 'BenchmarkLiveIngest|BenchmarkIngestTraced|BenchmarkIngestSampled' -benchmem -benchtime 3s -count 3 ./internal/live/

# bench-wire measures the wire path end to end: the binary codec in
# isolation (encode/decode records/s, allocs), the JSONL scan it
# replaces, and the four HTTP loopback ingest variants (jsonl/binary ×
# plain/gzip). The headline numbers live in BENCH_live_ingest.json;
# the binary HTTP path must stay within 2× of BenchmarkLiveIngest's
# in-process admission rate.
.PHONY: bench-wire
bench-wire:
	$(GO) test -run xxx -bench 'BenchmarkWireEncode|BenchmarkWireDecode' -benchmem ./internal/wire/
	$(GO) test -run xxx -bench BenchmarkScanJSONL -benchmem ./internal/telemetry/
	$(GO) test -run xxx -bench BenchmarkHTTPIngest -benchmem ./internal/live/

# bench-wal measures the durability tax: WAL-backed append throughput
# under each fsync policy (batch, interval, off) plus raw replay
# records/s, and the end-to-end HTTP ingest rate with the WAL attached.
# The numbers live in BENCH_wal.json; group-commit (interval) must
# sustain at least half of BENCH_live_ingest.json's binary HTTP rate,
# and fsync=off must be within noise of running without a WAL at all.
.PHONY: bench-wal
bench-wal:
	$(GO) test -run xxx -bench 'BenchmarkWALAppend|BenchmarkWALReplay' -benchmem ./internal/wal/
	$(GO) test -run xxx -bench BenchmarkHTTPIngestWAL -benchmem ./internal/live/

# bench-lint times a full fourteen-analyzer run over the module tree
# twice — cold (parse + type-check + analyze everything) and warm
# (every package replayed from the content-hash cache) — and records
# both in BENCH_lint.json, so analyzer additions that regress lint
# latency and cache regressions that erode the warm path both show up
# in review.
.PHONY: bench-lint
bench-lint:
	$(GO) test -run xxx -bench 'BenchmarkLintTree$$|BenchmarkLintTreeWarm' -benchtime 3x ./internal/lint/

# smoke boots the live serving plane end to end: vmpd ingests a vmpgen
# slice over HTTP and must answer queries byte-identically to vmpstudy
# computing them offline from the same file.
.PHONY: smoke
smoke:
	sh scripts/smoke_live.sh

# smoke-crash kill -9s a WAL-backed vmpd twice — once after a fully
# acked stream, once mid-stream against vmpgen's acked ledger — and
# requires recovery to lose nothing acknowledged and answer queries
# byte-identically to offline vmpstudy over the surviving records.
.PHONY: smoke-crash
smoke-crash:
	sh scripts/smoke_crash.sh
