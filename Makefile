GO ?= go

# Tier-1 verification: build, full test suite, formatting, vet, and the
# race detector on the packages that run goroutines (the parallel study
# runner and its substrates).
.PHONY: verify
verify: build test fmt-check vet race

.PHONY: build
build:
	$(GO) build ./...

.PHONY: test
test:
	$(GO) test ./...

.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: race
race:
	$(GO) test -race ./internal/core/... ./internal/ecosystem/... ./internal/telemetry/...

.PHONY: bench
bench:
	$(GO) test -run xxx -bench BenchmarkFullStudy -benchtime 5x .
