package vmp

import (
	"io"

	"vmp/internal/core"
	"vmp/internal/ecosystem"
	"vmp/internal/telemetry"
)

// Config parameterizes a study run. The zero value reproduces the
// paper's full setup: seed 1809, bi-weekly two-day snapshots over
// January 2016 – March 2018, and 150 playback sessions per publisher
// in the QoE experiments.
type Config = core.StudyConfig

// Study is a generated dataset plus the paper's analysis suite: one
// method per table and figure (Table1, Fig2a … Fig18), plus Render and
// RenderAll for text output. See internal/core for the method set.
type Study = core.Study

// Figures lists every renderable table/figure ID in presentation
// order.
var Figures = core.FigureIDs

// DefaultSeed is the seed used by all documented experiments.
const DefaultSeed = ecosystem.DefaultSeed

// New builds a study. Dataset generation is lazy: the first figure
// that needs view records triggers it.
func New(cfg Config) *Study { return core.NewStudy(cfg) }

// NewFromStore builds a study over an existing record store (e.g. a
// dataset decoded with ReadDataset) instead of generating one.
func NewFromStore(cfg Config, store *telemetry.Store) *Study {
	return core.NewStudyFromStore(cfg, store)
}

// WriteDataset generates the study's full view-record dataset and
// writes it to w as JSON lines — the interchange format cmd/vmpgen
// emits and the collector ingests.
func WriteDataset(s *Study, w io.Writer) error {
	return telemetry.EncodeJSONL(w, s.Store().All())
}

// ReadDataset parses a JSON-lines dataset into a telemetry store that
// the analytics packages can query.
func ReadDataset(r io.Reader) (*telemetry.Store, error) {
	recs, err := telemetry.DecodeJSONL(r)
	if err != nil {
		return nil, err
	}
	store := telemetry.NewStore()
	store.Append(recs...)
	return store, nil
}
