#!/bin/sh
# ci.sh — run the repository's full verification pipeline end to end.
# Every stage runs even if an earlier one fails, so a single CI pass
# reports all broken stages; the script exits nonzero if any failed.
set -u

cd "$(dirname "$0")/.."

failed=""

stage() {
	name="$1"
	shift
	echo "==> $name"
	if ! "$@"; then
		echo "==> $name FAILED"
		failed="$failed $name"
	fi
}

stage build     make build
stage test      make test
stage fmt-check make fmt-check
stage vet       make vet
stage lint      make lint
# lint-report materializes the machine-readable findings documents as
# CI artifacts regardless of whether the lint stage passed; the lint
# stage above is the gate, these files are the evidence (JSON for
# scripts, SARIF for code-scanning UIs).
stage lint-report sh -c '"${GO:-go}" run ./cmd/vmplint -json ./... > lint_report.json; test -s lint_report.json'
stage lint-sarif sh -c '"${GO:-go}" run ./cmd/vmplint -sarif ./... > lint_report.sarif; test -s lint_report.sarif'
stage race      make race
stage smoke     make smoke
stage smoke-crash make smoke-crash
# bench-wire-report materializes the wire-path benchmark numbers as a
# CI artifact: codec encode/decode, JSONL scan, and the HTTP loopback
# ingest variants that back BENCH_live_ingest.json. The stage fails
# only if a benchmark errors; throughput regressions show up in the
# artifact diff, not as a red build on a noisy shared runner.
stage bench-wire-report sh -c 'make bench-wire > bench_wire_report.txt 2>&1 && test -s bench_wire_report.txt && cat bench_wire_report.txt'

if [ -n "$failed" ]; then
	echo "ci: failed stages:$failed"
	exit 1
fi
echo "ci: all stages passed"
