#!/bin/sh
# ci.sh — run the repository's full verification pipeline end to end.
# Every stage runs even if an earlier one fails, so a single CI pass
# reports all broken stages; the script exits nonzero if any failed.
set -u

cd "$(dirname "$0")/.."

failed=""

stage() {
	name="$1"
	shift
	echo "==> $name"
	if ! "$@"; then
		echo "==> $name FAILED"
		failed="$failed $name"
	fi
}

stage build     make build
stage test      make test
stage fmt-check make fmt-check
stage vet       make vet
# lint is one vmplint invocation that gates the build AND materializes
# the machine-readable artifacts: the console report goes to the build
# log while -json-out/-sarif-out write lint_report.json (for scripts)
# and lint_report.sarif (for code-scanning UIs) from the same findings
# in the same pass — replacing the three separate runs CI used to pay
# for. -cache keys each package on its file contents, its
# dependencies' summaries, and the lint suite's own sources; -stats
# records where the time went.
stage lint sh -c '"${GO:-go}" run ./cmd/vmplint -cache -stats -json-out lint_report.json -sarif-out lint_report.sarif ./... && test -s lint_report.json && test -s lint_report.sarif'
# lint-tests folds _test.go files in for the determinism, dataflow,
# durability, and lock-order analyzers (same second pass `make lint`
# runs).
stage lint-tests sh -c '"${GO:-go}" run ./cmd/vmplint -cache -tests -only nondeterminism,maporder,bufalias,hotalloc,httpdiscipline,fsyncdiscipline,lockorder ./...'
# lint-cache-guard re-runs the lint fully warm and requires the JSON
# report to be bit-identical to the artifact the (partially cold)
# gating run produced: a poisoned, torn, or stale cache entry would
# change the bytes and fail the build.
stage lint-cache-guard sh -c '"${GO:-go}" run ./cmd/vmplint -cache -json ./... | cmp - lint_report.json'
stage race      make race
stage smoke     make smoke
stage smoke-crash make smoke-crash
# bench-wire-report materializes the wire-path benchmark numbers as a
# CI artifact: codec encode/decode, JSONL scan, and the HTTP loopback
# ingest variants that back BENCH_live_ingest.json. The stage fails
# only if a benchmark errors; throughput regressions show up in the
# artifact diff, not as a red build on a noisy shared runner.
stage bench-wire-report sh -c 'make bench-wire > bench_wire_report.txt 2>&1 && test -s bench_wire_report.txt && cat bench_wire_report.txt'

if [ -n "$failed" ]; then
	echo "ci: failed stages:$failed"
	exit 1
fi
echo "ci: all stages passed"
