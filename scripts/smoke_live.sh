#!/bin/sh
# smoke_live.sh — boot the live serving plane end to end and prove the
# online/offline equivalence contract on the wire: a vmpd that ingested
# a vmpgen slice over HTTP must answer /v1/query/* byte-identically to
# vmpstudy computing the same answers offline from the same JSONL file.
set -eu

cd "$(dirname "$0")/.."

ADDR="127.0.0.1:18474"
DIR="$(mktemp -d)"
VMPD_PID=""
cleanup() {
	if [ -n "$VMPD_PID" ] && kill -0 "$VMPD_PID" 2>/dev/null; then
		kill -TERM "$VMPD_PID" 2>/dev/null || true
		wait "$VMPD_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "smoke: building vmpd, vmpgen, vmpstudy"
go build -o "$DIR" ./cmd/vmpd ./cmd/vmpgen ./cmd/vmpstudy

echo "smoke: generating dataset slice"
"$DIR/vmpgen" -stride 24 -o "$DIR/views.jsonl"
RECORDS=$(wc -l < "$DIR/views.jsonl" | tr -d ' ')

echo "smoke: booting vmpd on $ADDR"
"$DIR/vmpd" -addr "$ADDR" -epoch 1h >"$DIR/vmpd.log" 2>&1 &
VMPD_PID=$!
i=0
until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
	i=$((i + 1))
	if [ "$i" -gt 100 ]; then
		echo "smoke: vmpd never became healthy" >&2
		cat "$DIR/vmpd.log" >&2
		exit 1
	fi
	sleep 0.1
done

echo "smoke: streaming $RECORDS records over HTTP (with ingest-counter verification)"
"$DIR/vmpgen" -stride 24 -post "http://$ADDR" -post-verify

echo "smoke: cutting an epoch"
SNAP=$(curl -sf -X POST "http://$ADDR/v1/snapshot")
case "$SNAP" in
*"\"records\":$RECORDS"*) ;;
*)
	echo "smoke: snapshot reports wrong record count: $SNAP (want $RECORDS)" >&2
	exit 1
	;;
esac

echo "smoke: checking /v1/metrics ingest counter"
METRICS=$(curl -sf "http://$ADDR/v1/metrics")
case "$METRICS" in
*"\"live_ingest_records_total\":$RECORDS"*) ;;
*)
	echo "smoke: metrics ingest counter does not match $RECORDS posted records: $METRICS" >&2
	exit 1
	;;
esac

echo "smoke: checking /v1/trace recorded the epoch cut"
TRACE=$(curl -sf "http://$ADDR/v1/trace")
case "$TRACE" in
*'"name":"epoch.cut"'*) ;;
*)
	echo "smoke: no epoch.cut span in /v1/trace" >&2
	exit 1
	;;
esac
case "$TRACE" in
*'"type":"generation_published"'*) ;;
*)
	echo "smoke: no generation_published event in /v1/trace" >&2
	exit 1
	;;
esac

echo "smoke: comparing online answers against offline vmpstudy"
curl -sf "http://$ADDR/v1/query/share?dim=protocol" >"$DIR/online_share.json"
curl -sf "http://$ADDR/v1/query/top-publishers?n=10" >"$DIR/online_top.json"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -share protocol >"$DIR/offline_share.json"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -top 10 >"$DIR/offline_top.json"
cmp "$DIR/online_share.json" "$DIR/offline_share.json" || {
	echo "smoke: online share answer differs from offline" >&2
	exit 1
}
cmp "$DIR/online_top.json" "$DIR/offline_top.json" || {
	echo "smoke: online top-publishers answer differs from offline" >&2
	exit 1
}

echo "smoke: draining vmpd with SIGTERM"
kill -TERM "$VMPD_PID"
if ! wait "$VMPD_PID"; then
	echo "smoke: vmpd exited nonzero" >&2
	cat "$DIR/vmpd.log" >&2
	exit 1
fi
VMPD_PID=""

echo "smoke: live serving plane OK ($RECORDS records, byte-identical answers)"
