#!/bin/sh
# smoke_live.sh — boot the live serving plane end to end and prove the
# online/offline equivalence contract on the wire: a vmpd that ingested
# a vmpgen slice over HTTP must answer /v1/query/* byte-identically to
# vmpstudy computing the same answers offline from the same JSONL file.
#
# The drive runs twice against two fresh daemons — once as plain JSONL,
# once as gzip-compressed binary batch frames — and the two runs must
# land the same ingest counter and byte-identical query answers: the
# wire encoding is a transport detail, never a semantic one.
set -eu

cd "$(dirname "$0")/.."

DIR="$(mktemp -d)"
VMPD_PID=""
cleanup() {
	if [ -n "$VMPD_PID" ] && kill -0 "$VMPD_PID" 2>/dev/null; then
		kill -TERM "$VMPD_PID" 2>/dev/null || true
		wait "$VMPD_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "smoke: building vmpd, vmpgen, vmpstudy, vmptop"
go build -o "$DIR" ./cmd/vmpd ./cmd/vmpgen ./cmd/vmpstudy ./cmd/vmptop

echo "smoke: generating dataset slice"
"$DIR/vmpgen" -stride 24 -o "$DIR/views.jsonl"
RECORDS=$(wc -l < "$DIR/views.jsonl" | tr -d ' ')

# boot_vmpd ADDR: start a fresh daemon and wait for /healthz.
boot_vmpd() {
	addr="$1"
	"$DIR/vmpd" -addr "$addr" -epoch 1h >"$DIR/vmpd-$addr.log" 2>&1 &
	VMPD_PID=$!
	i=0
	until curl -sf "http://$addr/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke: vmpd on $addr never became healthy" >&2
			cat "$DIR/vmpd-$addr.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# stop_vmpd: SIGTERM the current daemon and require a clean exit.
stop_vmpd() {
	kill -TERM "$VMPD_PID"
	if ! wait "$VMPD_PID"; then
		echo "smoke: vmpd exited nonzero" >&2
		cat "$DIR"/vmpd-*.log >&2
		exit 1
	fi
	VMPD_PID=""
}

# drive_and_query ADDR TAG [vmpgen encode flags...]: stream the slice
# into the daemon at ADDR, verify the ingest counter covers it, cut an
# epoch, and save the query answers under TAG.
drive_and_query() {
	addr="$1"
	tag="$2"
	shift 2
	echo "smoke: streaming $RECORDS records over HTTP ($tag, with ingest-counter verification)"
	"$DIR/vmpgen" -stride 24 -post "http://$addr" -post-verify "$@"

	echo "smoke: cutting an epoch ($tag)"
	SNAP=$(curl -sf -X POST "http://$addr/v1/snapshot")
	case "$SNAP" in
	*"\"records\":$RECORDS"*) ;;
	*)
		echo "smoke: snapshot reports wrong record count: $SNAP (want $RECORDS)" >&2
		exit 1
		;;
	esac

	echo "smoke: checking /v1/metrics ingest counter ($tag)"
	METRICS=$(curl -sf "http://$addr/v1/metrics")
	case "$METRICS" in
	*"\"live_ingest_records_total\":$RECORDS"*) ;;
	*)
		echo "smoke: metrics ingest counter does not match $RECORDS posted records: $METRICS" >&2
		exit 1
		;;
	esac

	curl -sf "http://$addr/v1/query/share?dim=protocol" >"$DIR/${tag}_share.json"
	curl -sf "http://$addr/v1/query/top-publishers?n=10" >"$DIR/${tag}_top.json"
}

# check_ack_quantiles ADDR HIST: require the ingest.ack histogram HIST
# in /v1/metrics to carry a count covering the drive and a nonzero p50.
check_ack_quantiles() {
	addr="$1"
	hist="$2"
	echo "smoke: checking $hist quantiles"
	METRICS=$(curl -sf "http://$addr/v1/metrics")
	case "$METRICS" in
	*"\"$hist\""*) ;;
	*)
		echo "smoke: $hist missing from /v1/metrics" >&2
		exit 1
		;;
	esac
	P50=$(printf '%s' "$METRICS" | sed -n "s/.*\"$hist\":{[^{]*{\"p50\":\([^,}]*\).*/\1/p")
	if [ -z "$P50" ]; then
		echo "smoke: $hist has no p50 quantile (empty histogram?): $METRICS" >&2
		exit 1
	fi
	case "$P50" in
	0 | 0.0 | -*)
		echo "smoke: $hist p50 = $P50, want > 0" >&2
		exit 1
		;;
	esac
	echo "smoke: $hist p50 = ${P50}s"
}

# check_prom ADDR: require /metrics to parse as Prometheus text format
# 0.0.4 — every line a TYPE comment or a sample — and to carry the
# ingest counter and ack histogram families.
check_prom() {
	addr="$1"
	echo "smoke: checking /metrics Prometheus exposition"
	curl -sf "http://$addr/metrics" >"$DIR/metrics.prom"
	if [ ! -s "$DIR/metrics.prom" ]; then
		echo "smoke: /metrics is empty" >&2
		exit 1
	fi
	BAD=$(grep -cvE '^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})? [0-9eE.+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{le="\+Inf"\} [0-9]+)$' "$DIR/metrics.prom" || true)
	if [ "$BAD" -ne 0 ]; then
		echo "smoke: $BAD /metrics lines violate the exposition grammar:" >&2
		grep -vE '^(# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)|[a-zA-Z_:][a-zA-Z0-9_:]*(_bucket\{le="[^"]+"\})? [0-9eE.+-]+|[a-zA-Z_:][a-zA-Z0-9_:]*_bucket\{le="\+Inf"\} [0-9]+)$' "$DIR/metrics.prom" >&2
		exit 1
	fi
	for want in "live_ingest_records_total $RECORDS" "# TYPE live_ingest_ack_jsonl_seconds histogram"; do
		if ! grep -qF "$want" "$DIR/metrics.prom"; then
			echo "smoke: /metrics missing \"$want\"" >&2
			exit 1
		fi
	done
}

# check_series ADDR: wait for the runtime sampler to record a point
# carrying the ingest counter, then point vmptop -once at it.
check_series() {
	addr="$1"
	echo "smoke: waiting for a /v1/series sample"
	i=0
	until curl -sf "http://$addr/v1/series" | grep -q "\"live_ingest_records_total\":$RECORDS"; do
		i=$((i + 1))
		if [ "$i" -gt 100 ]; then
			echo "smoke: /v1/series never recorded the ingest counter" >&2
			curl -sf "http://$addr/v1/series" >&2 || true
			exit 1
		fi
		sleep 0.1
	done
	echo "smoke: rendering one vmptop frame"
	"$DIR/vmptop" -addr "http://$addr" -once >"$DIR/vmptop.txt"
	for want in "ingest" "runtime"; do
		if ! grep -q "$want" "$DIR/vmptop.txt"; then
			echo "smoke: vmptop frame missing \"$want\" row:" >&2
			cat "$DIR/vmptop.txt" >&2
			exit 1
		fi
	done
}

ADDR="127.0.0.1:18474"
echo "smoke: booting vmpd on $ADDR (JSONL run)"
boot_vmpd "$ADDR"
drive_and_query "$ADDR" online
check_ack_quantiles "$ADDR" live_ingest_ack_jsonl_seconds
check_prom "$ADDR"
check_series "$ADDR"

echo "smoke: checking /v1/trace recorded the epoch cut"
TRACE=$(curl -sf "http://$ADDR/v1/trace")
case "$TRACE" in
*'"name":"epoch.cut"'*) ;;
*)
	echo "smoke: no epoch.cut span in /v1/trace" >&2
	exit 1
	;;
esac
case "$TRACE" in
*'"type":"generation_published"'*) ;;
*)
	echo "smoke: no generation_published event in /v1/trace" >&2
	exit 1
	;;
esac

echo "smoke: draining vmpd with SIGTERM"
stop_vmpd

ADDR2="127.0.0.1:18475"
echo "smoke: booting vmpd on $ADDR2 (binary+gzip run)"
boot_vmpd "$ADDR2"
drive_and_query "$ADDR2" binary -encode binary -compress
check_ack_quantiles "$ADDR2" live_ingest_ack_binary_seconds

echo "smoke: checking binary+gzip ingest answers match the JSONL run"
cmp "$DIR/online_share.json" "$DIR/binary_share.json" || {
	echo "smoke: binary-ingest share answer differs from JSONL ingest" >&2
	exit 1
}
cmp "$DIR/online_top.json" "$DIR/binary_top.json" || {
	echo "smoke: binary-ingest top-publishers answer differs from JSONL ingest" >&2
	exit 1
}

echo "smoke: draining vmpd with SIGTERM"
stop_vmpd

echo "smoke: comparing online answers against offline vmpstudy"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -share protocol >"$DIR/offline_share.json"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -top 10 >"$DIR/offline_top.json"
cmp "$DIR/online_share.json" "$DIR/offline_share.json" || {
	echo "smoke: online share answer differs from offline" >&2
	exit 1
}
cmp "$DIR/online_top.json" "$DIR/offline_top.json" || {
	echo "smoke: online top-publishers answer differs from offline" >&2
	exit 1
}

echo "smoke: live serving plane OK ($RECORDS records, byte-identical answers over JSONL, binary+gzip, and offline)"
