#!/bin/sh
# smoke_crash.sh — prove the WAL's durability contract against a real
# kill -9, on the wire, with no cooperation from the dying process.
#
# Phase 1 (clean stream, dirty death): stream a full vmpgen slice into
# a WAL-backed vmpd, kill -9 before any epoch can be cut, restart on
# the same -wal-dir, and require the recovered daemon's query answers
# to be byte-identical to vmpstudy computing them offline from the very
# file that was streamed. Everything acked must survive; nothing may be
# invented.
#
# Phase 2 (mid-stream death): stream with vmpgen's -acked ledger (each
# 202-acknowledged batch is on disk before the next POST), kill -9 in
# the middle of the stream, restart, and require (a) every acked record
# to be present in the recovered generation, and (b) the recovered
# daemon's answers to be byte-identical to vmpstudy over a dump of
# exactly what was recovered — the recovered state is internally
# consistent, not just a superset.
set -eu

cd "$(dirname "$0")/.."

DIR="$(mktemp -d)"
VMPD_PID=""
cleanup() {
	if [ -n "$VMPD_PID" ] && kill -0 "$VMPD_PID" 2>/dev/null; then
		kill -KILL "$VMPD_PID" 2>/dev/null || true
		wait "$VMPD_PID" 2>/dev/null || true
	fi
	rm -rf "$DIR"
}
trap cleanup EXIT INT TERM

echo "smoke-crash: building vmpd, vmpgen, vmpstudy"
go build -o "$DIR" ./cmd/vmpd ./cmd/vmpgen ./cmd/vmpstudy

echo "smoke-crash: generating dataset slice"
"$DIR/vmpgen" -stride 24 -o "$DIR/views.jsonl"
RECORDS=$(wc -l < "$DIR/views.jsonl" | tr -d ' ')

ADDR="127.0.0.1:18476"

# boot_vmpd TAG [extra vmpd flags...]: start a WAL-backed daemon with a
# deliberately huge -epoch so only a crash or an explicit snapshot ever
# moves data out of the WAL, and wait for /healthz (which only opens
# after boot replay finishes).
boot_vmpd() {
	tag="$1"
	shift
	"$DIR/vmpd" -addr "$ADDR" -epoch 24h -wal-dir "$DIR/wal" -wal-fsync batch "$@" \
		>"$DIR/vmpd-$tag.log" 2>&1 &
	VMPD_PID=$!
	i=0
	until curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; do
		i=$((i + 1))
		if [ "$i" -gt 200 ]; then
			echo "smoke-crash: vmpd ($tag) never became healthy" >&2
			cat "$DIR/vmpd-$tag.log" >&2
			exit 1
		fi
		sleep 0.1
	done
}

# kill9_vmpd: SIGKILL the daemon — no drain, no dump, no final epoch.
kill9_vmpd() {
	kill -KILL "$VMPD_PID"
	wait "$VMPD_PID" 2>/dev/null || true
	VMPD_PID=""
}

# stop_vmpd: SIGTERM and require a clean exit (used after recovery).
stop_vmpd() {
	kill -TERM "$VMPD_PID"
	if ! wait "$VMPD_PID"; then
		echo "smoke-crash: vmpd exited nonzero on SIGTERM" >&2
		cat "$DIR"/vmpd-*.log >&2
		exit 1
	fi
	VMPD_PID=""
}

# --- Phase 1: every record acked, then kill -9 before any epoch ---

echo "smoke-crash: phase 1: booting vmpd with WAL (fsync=batch)"
boot_vmpd phase1-pre

echo "smoke-crash: phase 1: streaming $RECORDS records, then kill -9"
"$DIR/vmpgen" -stride 24 -post "http://$ADDR" -post-verify
kill9_vmpd

echo "smoke-crash: phase 1: restarting on the same -wal-dir"
boot_vmpd phase1-post
SNAP=$(curl -sf -X POST "http://$ADDR/v1/snapshot")
case "$SNAP" in
*"\"records\":$RECORDS"*) ;;
*)
	echo "smoke-crash: phase 1: recovered generation wrong: $SNAP (want $RECORDS records)" >&2
	cat "$DIR/vmpd-phase1-post.log" >&2
	exit 1
	;;
esac

curl -sf "http://$ADDR/v1/query/share?dim=protocol" >"$DIR/p1_share.json"
curl -sf "http://$ADDR/v1/query/top-publishers?n=10" >"$DIR/p1_top.json"
stop_vmpd

echo "smoke-crash: phase 1: comparing recovered answers against offline vmpstudy"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -share protocol >"$DIR/p1_offline_share.json"
"$DIR/vmpstudy" -input "$DIR/views.jsonl" -top 10 >"$DIR/p1_offline_top.json"
cmp "$DIR/p1_share.json" "$DIR/p1_offline_share.json" || {
	echo "smoke-crash: phase 1: share answer diverged after crash recovery" >&2
	exit 1
}
cmp "$DIR/p1_top.json" "$DIR/p1_offline_top.json" || {
	echo "smoke-crash: phase 1: top-publishers answer diverged after crash recovery" >&2
	exit 1
}

# --- Phase 2: kill -9 mid-stream, acked ledger as the oracle ---

rm -rf "$DIR/wal"
echo "smoke-crash: phase 2: booting a fresh WAL-backed vmpd"
boot_vmpd phase2-pre

echo "smoke-crash: phase 2: streaming in small batches, kill -9 mid-stream"
"$DIR/vmpgen" -stride 24 -post "http://$ADDR" -post-batch 100 \
	-acked "$DIR/acked.jsonl" >"$DIR/vmpgen-phase2.log" 2>&1 &
GEN_PID=$!
# Wait until the daemon has acked a real prefix, then pull the plug;
# vmpgen's next POST fails and it exits nonzero — that is the point.
i=0
until [ -s "$DIR/acked.jsonl" ] && [ "$(wc -l < "$DIR/acked.jsonl")" -ge 500 ]; do
	i=$((i + 1))
	if [ "$i" -gt 200 ]; then
		echo "smoke-crash: phase 2: stream never reached 500 acked records" >&2
		exit 1
	fi
	sleep 0.05
done
kill9_vmpd
wait "$GEN_PID" 2>/dev/null || true
ACKED=$(wc -l < "$DIR/acked.jsonl" | tr -d ' ')

echo "smoke-crash: phase 2: restarting; $ACKED acked records must survive"
boot_vmpd phase2-post -dump "$DIR/recovered.jsonl"
curl -sf -X POST "http://$ADDR/v1/snapshot" >/dev/null
curl -sf "http://$ADDR/v1/query/share?dim=protocol" >"$DIR/p2_share.json"
curl -sf "http://$ADDR/v1/query/top-publishers?n=10" >"$DIR/p2_top.json"
stop_vmpd

RECOVERED=$(wc -l < "$DIR/recovered.jsonl" | tr -d ' ')
echo "smoke-crash: phase 2: recovered $RECOVERED records ($ACKED were acked)"
if [ "$RECOVERED" -lt "$ACKED" ]; then
	echo "smoke-crash: phase 2: recovered fewer records than were acked" >&2
	exit 1
fi

# Every acked line must appear in the recovered dump (comm -23 on
# sorted files is a multiset subset check: lines only in the ledger).
sort "$DIR/acked.jsonl" >"$DIR/acked.sorted"
sort "$DIR/recovered.jsonl" >"$DIR/recovered.sorted"
LOST=$(comm -23 "$DIR/acked.sorted" "$DIR/recovered.sorted" | wc -l | tr -d ' ')
if [ "$LOST" -ne 0 ]; then
	echo "smoke-crash: phase 2: $LOST acked records lost in the crash:" >&2
	comm -23 "$DIR/acked.sorted" "$DIR/recovered.sorted" | head -5 >&2
	exit 1
fi

echo "smoke-crash: phase 2: comparing recovered answers against vmpstudy over the recovered dump"
"$DIR/vmpstudy" -input "$DIR/recovered.jsonl" -share protocol >"$DIR/p2_offline_share.json"
"$DIR/vmpstudy" -input "$DIR/recovered.jsonl" -top 10 >"$DIR/p2_offline_top.json"
cmp "$DIR/p2_share.json" "$DIR/p2_offline_share.json" || {
	echo "smoke-crash: phase 2: share answer inconsistent with recovered state" >&2
	exit 1
}
cmp "$DIR/p2_top.json" "$DIR/p2_offline_top.json" || {
	echo "smoke-crash: phase 2: top-publishers answer inconsistent with recovered state" >&2
	exit 1
}

echo "smoke-crash: WAL durability OK (phase 1: $RECORDS/$RECORDS after kill -9; phase 2: $ACKED acked, $RECOVERED recovered, 0 lost)"
