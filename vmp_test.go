package vmp_test

import (
	"bytes"
	"strings"
	"testing"

	"vmp"
)

// facadeStudy is shared across the public-API tests.
var facadeStudy = vmp.New(vmp.Config{SnapshotStride: 20, QoESessions: 20})

func TestFacadeFiguresList(t *testing.T) {
	if len(vmp.Figures) < 30 {
		t.Fatalf("Figures lists %d experiments, want the full set", len(vmp.Figures))
	}
	seen := map[string]bool{}
	for _, id := range vmp.Figures {
		if seen[id] {
			t.Fatalf("duplicate figure ID %q", id)
		}
		seen[id] = true
	}
	for _, must := range []string{"tab1", "2b", "13a", "18", "macro"} {
		if !seen[must] {
			t.Fatalf("figure %q missing from the public list", must)
		}
	}
}

func TestFacadeRender(t *testing.T) {
	var buf bytes.Buffer
	if err := facadeStudy.Render(&buf, "tab1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SmoothStreaming") {
		t.Fatalf("Table 1 output incomplete: %s", buf.String())
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := vmp.WriteDataset(facadeStudy, &buf); err != nil {
		t.Fatal(err)
	}
	store, err := vmp.ReadDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if store.Len() != facadeStudy.Store().Len() {
		t.Fatalf("round trip lost records: %d vs %d", store.Len(), facadeStudy.Store().Len())
	}
	if got, want := store.TotalViewHours(), facadeStudy.Store().TotalViewHours(); got < want*0.999 || got > want*1.001 {
		t.Fatalf("view-hours drifted through serialization: %v vs %v", got, want)
	}
	if _, err := vmp.ReadDataset(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage dataset accepted")
	}
}

func TestFacadeDeterminism(t *testing.T) {
	a := vmp.New(vmp.Config{SnapshotStride: 30})
	b := vmp.New(vmp.Config{SnapshotStride: 30})
	var bufA, bufB bytes.Buffer
	if err := a.Render(&bufA, "3a"); err != nil {
		t.Fatal(err)
	}
	if err := b.Render(&bufB, "3a"); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Fatal("two default studies rendered different figures")
	}
}

func TestDefaultSeedStable(t *testing.T) {
	// The documented experiments all assume this seed; changing it
	// invalidates EXPERIMENTS.md.
	if vmp.DefaultSeed != 1809 {
		t.Fatalf("DefaultSeed = %d; update EXPERIMENTS.md if this is intentional", vmp.DefaultSeed)
	}
}
