// Benchmark harness: one benchmark per table and figure in the paper's
// evaluation, plus ablations for the design choices DESIGN.md calls
// out. Each figure benchmark measures the cost of regenerating that
// figure from the (memoized) dataset; where a figure has a headline
// number, it is attached via b.ReportMetric so `go test -bench` output
// doubles as a results table.
package vmp_test

import (
	"fmt"
	"io"
	"sync"
	"testing"

	"vmp"

	"vmp/internal/cdnsim"
	"vmp/internal/device"
	"vmp/internal/dist"
	"vmp/internal/manifest"
	"vmp/internal/netmodel"
	"vmp/internal/packaging"
	"vmp/internal/player"
	"vmp/internal/simclock"
	"vmp/internal/syndication"
	"vmp/internal/telemetry"
	"vmp/internal/triage"
)

var (
	benchOnce  sync.Once
	benchStudy *vmp.Study
)

// benchSetup builds one strided study shared by all figure benchmarks
// (stride 6 ≈ 10 of the 59 snapshots; the latest snapshot is always
// retained) and forces dataset generation so benchmarks time analysis,
// not generation.
func benchSetup(b *testing.B) *vmp.Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = vmp.New(vmp.Config{SnapshotStride: 6, QoESessions: 40})
		benchStudy.Store()
	})
	return benchStudy
}

func BenchmarkTable1ProtocolInference(b *testing.B) {
	urls := []string{
		"http://x.akamaihd.net/master.m3u8",
		"http://x.llwnd.net//Z53TiGRzq.mpd",
		"http://x.level3.net/56.ism/manifest",
		"http://x.aws.com/cache/hds.f4m",
		"rtmp://live.example.com/s1",
		"http://x.example.com/video.mp4",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, u := range urls {
			if manifest.InferProtocol(u) == manifest.Unknown {
				b.Fatal("inference failed")
			}
		}
	}
}

func BenchmarkFig2ProtocolShares(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var dash float64
	for i := 0; i < b.N; i++ {
		dash = s.Fig2b().Latest("DASH")
		s.Fig2a()
		s.Fig2c()
	}
	b.ReportMetric(dash, "DASH-latest-%VH")
}

func BenchmarkFig3ProtocolsPerPublisher(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Fig3a()
		s.Fig3b()
		s.Fig3c()
	}
}

func BenchmarkFig4ProtocolShareCDF(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cdfs := s.Fig4(); len(cdfs) != 2 {
			b.Fatal("bad Fig4")
		}
	}
}

func BenchmarkFig5PlatformTaxonomy(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if rows := s.Fig5(); len(rows) != 5 {
			b.Fatal("bad Fig5")
		}
	}
}

func BenchmarkFig6PlatformShares(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var settop float64
	for i := 0; i < b.N; i++ {
		settop = s.Fig6a().Latest("SetTop")
		s.Fig6b()
		s.Fig6c()
	}
	b.ReportMetric(settop, "settop-latest-%VH")
}

func BenchmarkFig7PlatformSupport(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Fig7()
	}
}

func BenchmarkFig8DurationCDFs(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cdfs := s.Fig8(); len(cdfs) == 0 {
			b.Fatal("bad Fig8")
		}
	}
}

func BenchmarkFig9PlatformsPerPublisher(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Fig9a()
		s.Fig9b()
		s.Fig9c()
	}
}

func BenchmarkFig10WithinPlatformDevices(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var roku float64
	for i := 0; i < b.N; i++ {
		s.Fig10(device.Browser)
		s.Fig10(device.Mobile)
		roku = s.Fig10(device.SetTop).Latest("Roku")
	}
	b.ReportMetric(roku, "roku-latest-%settopVH")
}

func BenchmarkFig11CDNShares(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var a float64
	for i := 0; i < b.N; i++ {
		s.Fig11a()
		a = s.Fig11b().Latest("A")
	}
	b.ReportMetric(a, "cdnA-latest-%VH")
}

func BenchmarkFig12CDNsPerPublisher(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var weighted float64
	for i := 0; i < b.N; i++ {
		s.Fig12a()
		s.Fig12b()
		avg := s.Fig12c()
		weighted = avg.Weighted[len(avg.Weighted)-1]
	}
	b.ReportMetric(weighted, "weighted-avg-CDNs")
}

func BenchmarkFig13Complexity(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var factor float64
	for i := 0; i < b.N; i++ {
		rep, err := s.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		factor = rep.ProtocolTitles.PerDecadeFactor
	}
	b.ReportMetric(factor, "protocol-titles-x/decade")
}

func BenchmarkFig14SyndicationPrevalence(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pts, _ := s.Fig14(); len(pts) == 0 {
			b.Fatal("bad Fig14")
		}
	}
}

func BenchmarkFig15and16QoE(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var ratio float64
	for i := 0; i < b.N; i++ {
		comps, err := s.Fig15and16()
		if err != nil {
			b.Fatal(err)
		}
		ratio = comps[0].Owner.MedianKbps / comps[0].Syndicator.MedianKbps
	}
	b.ReportMetric(ratio, "owner/synd-median-bitrate")
}

func BenchmarkFig17LadderTable(b *testing.B) {
	s := benchSetup(b)
	for i := 0; i < b.N; i++ {
		if _, err := s.Fig17(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig18StorageSavings(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var integrated float64
	for i := 0; i < b.N; i++ {
		exp, err := s.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		integrated = exp.Reports[0].Report.IntegratedPct
	}
	b.ReportMetric(integrated, "integrated-%savings")
}

func BenchmarkDatasetGeneration(b *testing.B) {
	// The cost of generating one full snapshot across the population.
	study := vmp.New(vmp.Config{SnapshotStride: 59})
	snap := study.Eco.Schedule.Latest()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := study.Eco.GenerateSnapshot(snap); len(recs) == 0 {
			b.Fatal("no records")
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

// BenchmarkAblationDedupTolerance sweeps the dedup tolerance on the
// Fig 18 origin and reports the savings percentage at each setting.
func BenchmarkAblationDedupTolerance(b *testing.B) {
	exps := map[string]float64{"exact": 0, "tol2.5%": 0.025, "tol5%": 0.05, "tol10%": 0.10, "tol20%": 0.20}
	for name, tol := range exps {
		tol := tol
		b.Run(name, func(b *testing.B) {
			cfg := syndication.DefaultStorageConfig()
			cfg.Titles = 120 // keep per-iteration cost modest
			exp, err := syndication.RunStorageExperiment(cfg)
			if err != nil {
				b.Fatal(err)
			}
			_ = exp
			origin := cdnsim.NewOrigin()
			o, s1, s2 := syndication.Fig18Ladders()
			push := func(pub string, l manifest.Ladder) {
				m := map[int]int64{}
				for _, r := range l {
					m[r.BitrateKbps] = int64(r.BitrateKbps) * 450000
				}
				for t := 0; t < 100; t++ {
					origin.Push(pub, string(rune('a'+t%26))+string(rune('0'+t/26)), m)
				}
			}
			push("O", o)
			push("S1", s1)
			push("S2", s2)
			var saved int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				saved = origin.DedupSavings(tol)
			}
			b.ReportMetric(100*float64(saved)/float64(origin.TotalBytes()), "%saved")
		})
	}
}

// BenchmarkAblationABR plays identical sessions under each ABR and
// reports delivered bitrate and rebuffering, quantifying the algorithm
// choice the player defaults bake in.
func BenchmarkAblationABR(b *testing.B) {
	for _, name := range []string{"buffer", "rate", "bola", "fixed"} {
		name := name
		b.Run(name, func(b *testing.B) {
			abr, err := player.ByName(name)
			if err != nil {
				b.Fatal(err)
			}
			spec := &manifest.Spec{
				VideoID: "abl", DurationSec: 1200, ChunkSec: 4, AudioKbps: 96,
				Ladder: packaging.GuidelineLadder(6000, 1.8),
			}
			text, err := manifest.Generate(manifest.HLS, spec, "http://cdn/abl")
			if err != nil {
				b.Fatal(err)
			}
			m, err := manifest.Parse("http://cdn/abl/abl.m3u8", text)
			if err != nil {
				b.Fatal(err)
			}
			isp, _ := netmodel.ISPByName("ISP-Y")
			profile := netmodel.PathProfile(isp, netmodel.Cellular, 0.9)
			var kbps, rebuf float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := player.Play(player.Config{
					Manifest: m, ABR: abr,
					Trace:    profile.NewTrace(dist.NewSource(uint64(i + 1))),
					WatchSec: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				kbps += res.AvgBitrateKbps
				rebuf += res.RebufferRatio()
			}
			b.ReportMetric(kbps/float64(b.N), "avg-Kbps")
			b.ReportMetric(100*rebuf/float64(b.N), "avg-%rebuf")
		})
	}
}

// BenchmarkAblationEdgeCache sweeps the edge cache size and reports
// the hit ratio a fixed Zipf workload achieves.
func BenchmarkAblationEdgeCache(b *testing.B) {
	for _, mb := range []int64{64, 256, 1024, 4096} {
		mb := mb
		b.Run(byteSizeName(mb), func(b *testing.B) {
			zipf := dist.NewZipf(5000, 0.9)
			var ratio float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cache := cdnsim.NewEdgeCache(mb << 20)
				src := dist.NewSource(9)
				for j := 0; j < 20000; j++ {
					obj := zipf.Draw(src)
					cache.Serve(chunkName(obj), 2<<20)
				}
				ratio = cache.HitRatio()
			}
			b.ReportMetric(100*ratio, "%hit")
		})
	}
}

func byteSizeName(mb int64) string {
	switch {
	case mb >= 1024:
		return "cap-" + string(rune('0'+mb/1024)) + "GiB"
	default:
		return "cap-" + string(rune('0'+mb/100)) + "00MiB"
	}
}

func chunkName(i int) string {
	buf := [12]byte{'c', 'h', 'u', 'n', 'k', '-'}
	n := 6
	if i == 0 {
		buf[n] = '0'
		n++
	}
	for v := i; v > 0; v /= 10 {
		buf[n] = byte('0' + v%10)
		n++
	}
	return string(buf[:n])
}

// BenchmarkAblationSnapshotCadence compares the paper's bi-weekly
// cadence against weekly and monthly schedules: the DASH trend
// estimate should be cadence-insensitive, while cost scales linearly.
func BenchmarkAblationSnapshotCadence(b *testing.B) {
	for _, cfg := range []struct {
		name string
		days int
	}{{"weekly", 7}, {"biweekly", 14}, {"monthly", 28}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			sched := simclock.MakeSchedule(cfg.days, 2)
			// Thin to ~6 snapshots to keep per-iteration cost bounded
			// while preserving the cadence's window positions.
			var thin simclock.Schedule
			for i := 0; i < len(sched); i += len(sched)/6 + 1 {
				thin = append(thin, sched[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				study := vmp.New(vmp.Config{})
				eco := study.Eco
				var total, dash float64
				for _, snap := range thin {
					for _, rec := range eco.GenerateSnapshot(snap) {
						vh := rec.ViewHours()
						total += vh
						if manifest.InferProtocol(rec.URL) == manifest.DASH {
							dash += vh
						}
					}
				}
				b.ReportMetric(100*dash/total, "mean-%DASH")
			}
		})
	}
}

// BenchmarkAblationLadderPolicy compares the HLS-guideline ladder
// against per-title ladders on packaging cost for the same content.
func BenchmarkAblationLadderPolicy(b *testing.B) {
	protocols := []manifest.Protocol{manifest.HLS, manifest.DASH}
	for _, cfg := range []struct {
		name   string
		ladder func(i int) manifest.Ladder
	}{
		{"guideline", func(i int) manifest.Ladder { return packaging.GuidelineLadder(6000, 1.8) }},
		{"per-title", func(i int) manifest.Ladder {
			return packaging.PerTitleLadder(dist.NewSource(uint64(i+1)), 6000, 0.8+0.4*float64(i%3))
		}},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var storage int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				storage = 0
				for t := 0; t < 50; t++ {
					spec := manifest.Spec{
						VideoID: "v", DurationSec: 1800, ChunkSec: 4, AudioKbps: 96,
						Ladder: cfg.ladder(t),
					}
					_, cost, err := packaging.Pipeline(spec, protocols, false)
					if err != nil {
						b.Fatal(err)
					}
					storage += cost.StorageBytes
				}
			}
			b.ReportMetric(float64(storage)/1e9, "GB-per-50-titles")
		})
	}
}

// BenchmarkAblationAnycast quantifies §4.3's observation that anycast
// route instability is not a blocking factor: it plays sessions on an
// anycast CDN at increasing route-flip rates and reports the mean
// rebuffering ratio.
func BenchmarkAblationAnycast(b *testing.B) {
	for _, cfg := range []struct {
		name string
		prob float64
	}{
		{"no-flips", 0},
		{"realistic-0.2pct", 0.002},
		{"stressed-2pct", 0.02},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			spec := &manifest.Spec{
				VideoID: "any", DurationSec: 1200, ChunkSec: 4, AudioKbps: 96,
				Ladder: packaging.GuidelineLadder(6000, 1.8),
			}
			text, err := manifest.Generate(manifest.HLS, spec, "http://cdn/any")
			if err != nil {
				b.Fatal(err)
			}
			m, err := manifest.Parse("http://cdn/any/any.m3u8", text)
			if err != nil {
				b.Fatal(err)
			}
			anycast := cdnsim.NewCDN("B", true, true, 8<<30)
			isp, _ := netmodel.ISPByName("ISP-X")
			profile := netmodel.PathProfile(isp, netmodel.WiFi, 1.0)
			var rebuf, flips float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var flipSrc *dist.Source
				if cfg.prob > 0 {
					flipSrc = dist.NewSource(uint64(9000 + i))
				}
				res, err := player.Play(player.Config{
					Manifest: m, ABR: player.BufferBased{},
					Trace: profile.NewTrace(dist.NewSource(uint64(i + 1))),
					CDN:   anycast, ISP: isp.Name, WatchSec: 900,
					RouteFlipSrc: flipSrc, RouteFlipPerChunk: cfg.prob,
				})
				if err != nil {
					b.Fatal(err)
				}
				rebuf += res.RebufferRatio()
				flips += float64(res.RouteFlips)
			}
			b.ReportMetric(100*rebuf/float64(b.N), "avg-%rebuf")
			b.ReportMetric(flips/float64(b.N), "flips/session")
		})
	}
}

// BenchmarkAblationIntegrationModel compares the syndicator's QoE
// under the three §6 integration models on one slice.
func BenchmarkAblationIntegrationModel(b *testing.B) {
	cat := syndication.StarCatalogue()
	s7, _ := cat.SyndicatorByID("S7")
	cdns := cdnsim.NewRegistry(dist.NewSource(1))
	cdnA, _ := cdns.ByName("A")
	ispX, _ := netmodel.ISPByName("ISP-X")
	for _, model := range []syndication.IntegrationModel{
		syndication.Independent, syndication.APIIntegrated, syndication.AppIntegrated,
	} {
		model := model
		b.Run(model.String(), func(b *testing.B) {
			slice := syndication.QoESlice{ISP: ispX, Conn: netmodel.Cellular, CDN: cdnA,
				Sessions: 30, WatchSec: 600, Seed: 21}
			var median float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := syndication.MeasureIntegration(cat.Owner, s7, cat.TitleID, model, slice)
				if err != nil {
					b.Fatal(err)
				}
				median = d.MedianKbps
			}
			b.ReportMetric(median, "synd-median-Kbps")
		})
	}
}

// BenchmarkAblationChunkDuration sweeps the chunk duration, the
// packaging knob trading live latency (§4.1) against delivery
// robustness: longer chunks add glass-to-glass delay.
func BenchmarkAblationChunkDuration(b *testing.B) {
	for _, chunkSec := range []float64{2, 4, 6, 10} {
		chunkSec := chunkSec
		b.Run(fmt.Sprintf("chunk-%gs", chunkSec), func(b *testing.B) {
			liveSpec := manifest.Spec{
				VideoID: "cd", ChunkSec: chunkSec, Live: true, AudioKbps: 96,
				Ladder: packaging.GuidelineLadder(5000, 1.8),
			}
			lat, err := packaging.GlassToGlass(liveSpec, packaging.SelfHosted, 2, 0.05)
			if err != nil {
				b.Fatal(err)
			}
			text, err := manifest.Generate(manifest.HLS, &liveSpec, "http://cdn/cd")
			if err != nil {
				b.Fatal(err)
			}
			m, err := manifest.Parse("http://cdn/cd/cd.m3u8", text)
			if err != nil {
				b.Fatal(err)
			}
			isp, _ := netmodel.ISPByName("ISP-Y")
			profile := netmodel.PathProfile(isp, netmodel.Cellular, 0.9)
			var rebuf float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := player.Play(player.Config{
					Manifest: m, ABR: player.BufferBased{},
					Trace:    profile.NewTrace(dist.NewSource(uint64(i + 1))),
					WatchSec: 600,
				})
				if err != nil {
					b.Fatal(err)
				}
				rebuf += res.RebufferRatio()
			}
			b.ReportMetric(lat.Total(), "glass-to-glass-sec")
			b.ReportMetric(100*rebuf/float64(b.N), "avg-%rebuf")
		})
	}
}

// BenchmarkAblationPackagingLocation compares self-hosted against
// CDN-hosted packaging (§2) on compute and publisher-uplink bytes for
// a large publisher's configuration.
func BenchmarkAblationPackagingLocation(b *testing.B) {
	spec := manifest.Spec{
		VideoID: "loc", DurationSec: 3600, ChunkSec: 4, AudioKbps: 96,
		Ladder: packaging.GuidelineLadder(8000, 1.7),
	}
	for _, loc := range []packaging.Location{packaging.SelfHosted, packaging.CDNHosted} {
		loc := loc
		b.Run(loc.String(), func(b *testing.B) {
			var plan *packaging.Plan
			var err error
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				plan, err = packaging.PlanPipeline(loc, spec, manifest.HTTPProtocols, true, 5)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(plan.PublisherCPU+plan.CDNCPU, "cpu-sec")
			b.ReportMetric(float64(plan.UploadBytes)/1e9, "uplink-GB")
		})
	}
}

// BenchmarkTriageLocalization measures failure triaging over one
// snapshot of the population with an injected interaction fault, and
// reports how many combinations had to be aggregated — the §5 cost
// driver.
func BenchmarkTriageLocalization(b *testing.B) {
	eco := vmp.New(vmp.Config{SnapshotStride: 59}).Eco
	recs := eco.GenerateSnapshot(eco.Schedule.Latest())
	inj, err := triage.NewInjector(0.01, dist.NewSource(5), triage.Fault{
		Match:    triage.Combination{CDN: "E"},
		FailProb: 0.4,
	})
	if err != nil {
		b.Fatal(err)
	}
	inj.Apply(recs)
	b.ResetTimer()
	var combos int
	for i := 0; i < b.N; i++ {
		findings, tr, err := triage.Run(recs, triage.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if len(findings) == 0 {
			b.Fatal("fault not localized")
		}
		combos = tr.CombinationsTracked()
	}
	b.ReportMetric(float64(combos), "combinations")
}

// BenchmarkRenderAll measures end-to-end rendering of the whole study.
func BenchmarkRenderAll(b *testing.B) {
	s := benchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RenderAll(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

var (
	fullStudyOnce  sync.Once
	fullStudyStore *telemetry.Store
)

// fullStudyConfig mirrors benchSetup's strided study.
var fullStudyConfig = vmp.Config{SnapshotStride: 6, QoESessions: 40}

// BenchmarkFullStudy measures the complete cold-start analysis path —
// freeze, every figure computation, full render — with a fresh study
// per iteration over one pre-generated record store, so memoization
// inside a single run counts but nothing carries across iterations.
// The serial and parallel sub-benchmarks produce byte-identical output
// (see core.TestRenderAllParallelByteIdentical).
func BenchmarkFullStudy(b *testing.B) {
	fullStudyOnce.Do(func() {
		fullStudyStore = vmp.New(fullStudyConfig).Store()
	})
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := vmp.NewFromStore(fullStudyConfig, fullStudyStore)
			if err := s.RenderAll(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := vmp.NewFromStore(fullStudyConfig, fullStudyStore)
			if err := s.RenderAllParallel(io.Discard, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
