// Package vmp is a full reproduction of "Understanding Video
// Management Planes" (Akhtar, Nam, et al., IMC 2018) as a Go library:
// a synthetic-but-calibrated video delivery ecosystem (publishers,
// packaging, manifests, CDNs, devices, players, telemetry) and the
// management-plane characterization pipeline the paper runs over it.
//
// The paper's dataset is proprietary (Conviva's view-level telemetry
// from >100 publishers over 27 months), so this library generates a
// deterministic synthetic population whose structure matches every
// anchor the paper reports, then re-derives all of the paper's tables
// and figures from the generated view records. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-versus-measured values.
//
// # Quick start
//
//	study := vmp.New(vmp.Config{})
//	study.Render(os.Stdout, "2b")   // % of view-hours per protocol
//	study.RenderAll(os.Stdout)      // every table and figure
//
// The heavy lifting lives in internal packages: internal/ecosystem
// (population generator), internal/manifest (HLS/DASH/Smooth/HDS),
// internal/cdnsim (origins, edges, broker), internal/player (ABR
// playback), internal/telemetry (records, collector), and the analysis
// packages internal/analytics, internal/complexity, and
// internal/syndication.
package vmp
